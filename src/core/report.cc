#include "core/report.hh"

#include <fstream>

#include "core/runtime.hh"
#include "support/json.hh"

namespace el::core
{

using ipf::Bucket;

namespace
{

double
bucketCycles(const ipf::BucketStats &st, Bucket b)
{
    return st.cycles[static_cast<size_t>(b)];
}

double
misalignIn(const ipf::Machine &m, Bucket b)
{
    return m.misalignCycles()[static_cast<size_t>(b)];
}

} // namespace

Attribution
attributionOf(Runtime &rt)
{
    const ipf::Machine &m = rt.machine();
    const ipf::BucketStats &st = m.stats();
    double fault_overhead = rt.faultOverheadCycles();

    // Misalignment penalties were charged into the bucket of the
    // faulting instruction; pull them out of each bucket and pool them
    // with the runtime's guard-repair overhead. Every subtraction
    // re-appears as an addition in fault_handling, and all values are
    // integer-valued doubles, so total() reproduces the machine's
    // bucket sum exactly.
    Attribution a;
    a.cold_code = bucketCycles(st, Bucket::Cold) -
                  misalignIn(m, Bucket::Cold);
    a.hot_code =
        bucketCycles(st, Bucket::Hot) - misalignIn(m, Bucket::Hot);
    a.btgeneric = bucketCycles(st, Bucket::Overhead) -
                  misalignIn(m, Bucket::Overhead) - fault_overhead;
    a.native = bucketCycles(st, Bucket::Native) -
               misalignIn(m, Bucket::Native);
    a.idle =
        bucketCycles(st, Bucket::Idle) - misalignIn(m, Bucket::Idle);
    double misalign_total = 0;
    for (double c : m.misalignCycles())
        misalign_total += c;
    a.fault_handling = misalign_total + fault_overhead;
    return a;
}

std::string
runReportJson(Runtime &rt, const std::string &workload)
{
    ipf::Machine &m = rt.machine();
    const ipf::BucketStats &st = m.stats();
    Attribution a = attributionOf(rt);

    json::Writer w;
    w.beginObject();
    w.kv("workload", workload);
    w.kv("cycles", m.totalCycles());
    w.kv("retired_ipf_insns", m.retired());
    w.kv("misaligned_accesses", m.misalignedAccesses());

    w.key("attribution");
    w.beginObject();
    w.kv("cold_code", a.cold_code);
    w.kv("hot_code", a.hot_code);
    w.kv("btgeneric", a.btgeneric);
    w.kv("fault_handling", a.fault_handling);
    w.kv("native", a.native);
    w.kv("idle", a.idle);
    w.kv("total", a.total());
    w.endObject();

    w.key("buckets");
    w.beginObject();
    static const char *bucket_names[] = {"hot", "cold", "overhead",
                                         "native", "idle"};
    for (size_t b = 0;
         b < static_cast<size_t>(Bucket::NumBuckets); ++b) {
        w.key(bucket_names[b]);
        w.beginObject();
        w.kv("cycles", st.cycles[b]);
        w.kv("insns", st.insns[b]);
        w.endObject();
    }
    w.endObject();

    // One merged counter namespace (translator + runtime counters are
    // disjoint today; merging keeps the JSON free of duplicate keys if
    // that ever changes).
    StatGroup all_stats = rt.translator().stats;
    all_stats.merge(rt.stats());
    w.key("stats");
    w.beginObject();
    for (const auto &[name, value] : all_stats.all())
        w.kv(name, value);
    w.endObject();

    if (m.trackBlockCycles()) {
        w.key("blocks");
        w.beginArray();
        for (const auto &[id, cost] : m.blockCosts()) {
            w.beginObject();
            w.kv("id", id);
            const BlockInfo *bi = rt.translator().blockById(id);
            if (bi) {
                w.kv("eip", static_cast<uint64_t>(bi->entry_eip));
                w.kv("kind",
                     bi->kind == BlockKind::Hot ? "hot" : "cold");
            } else {
                // id -1: runtime-emitted stub code with no block.
                w.kv("kind", "runtime");
            }
            w.kv("cycles", cost.cycles);
            w.kv("insns", cost.insns);
            w.endObject();
        }
        w.endArray();
    }

    w.endObject();
    return w.str() + "\n";
}

bool
writeRunReport(Runtime &rt, const std::string &workload,
               const std::string &path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << runReportJson(rt, workload);
    return static_cast<bool>(f);
}

} // namespace el::core
