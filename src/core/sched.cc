#include "core/sched.hh"

#include <algorithm>
#include <map>
#include <set>

#include "ipf/regs.hh"
#include "support/logging.hh"

namespace el::core
{

using ipf::IpfOp;
using ipf::Slot;

namespace
{

/** Operand reference: class + id. */
struct Ref
{
    RegClass cls = RegClass::None;
    int16_t id = -1;

    bool valid() const { return cls != RegClass::None && id >= 0; }
    bool operator<(const Ref &o) const
    {
        return cls != o.cls ? cls < o.cls : id < o.id;
    }
};

/** Collect the register reads of an IL (including its predicate). */
unsigned
reads(const Il &il, Ref out[5])
{
    OperandClasses c = operandClasses(il.ins.op);
    unsigned n = 0;
    const int16_t srcs[3] = {il.src1, il.src2, il.src3};
    for (unsigned k = 0; k < 3; ++k) {
        if (c.src[k] != RegClass::None && srcs[k] >= 0 &&
            !(c.src[k] == RegClass::Gr && srcs[k] == ipf::gr_zero)) {
            out[n++] = {c.src[k], srcs[k]};
        }
    }
    if (il.qp != 0)
        out[n++] = {RegClass::Pr, il.qp};
    // Post-increment memory ops also read+write their address register
    // (already covered as src1).
    return n;
}

/** Collect the register writes of an IL. */
unsigned
writes(const Il &il, Ref out[3])
{
    OperandClasses c = operandClasses(il.ins.op);
    unsigned n = 0;
    if (c.dst != RegClass::None && il.dst >= 0 &&
        !(c.dst == RegClass::Gr && il.dst == ipf::gr_zero)) {
        out[n++] = {c.dst, il.dst};
    }
    if (c.dst2 != RegClass::None && il.dst2 >= 0)
        out[n++] = {c.dst2, il.dst2};
    // Post-increment updates the address register.
    if ((il.ins.op == IpfOp::Ld || il.ins.op == IpfOp::St ||
         il.ins.op == IpfOp::Ldf || il.ins.op == IpfOp::Stf) &&
        il.ins.imm != 0) {
        out[n++] = {RegClass::Gr, il.src1};
    }
    return n;
}

/** Does the IL have side effects that forbid elimination? */
bool
hasSideEffects(const Il &il)
{
    switch (il.ins.op) {
      case IpfOp::St:
      case IpfOp::Stf:
      case IpfOp::ChkS:
      case IpfOp::Mf:
      case IpfOp::Br:
      case IpfOp::BrCall:
      case IpfOp::BrRet:
      case IpfOp::BrInd:
      case IpfOp::MovToBr:
      case IpfOp::Exit:
        return true;
      default:
        return il.is_ordered;
    }
}

/** Latency estimate for priorities. */
unsigned
latencyOf(const Il &il)
{
    switch (il.ins.op) {
      case IpfOp::Ld:
      case IpfOp::Ldf:
        return 3;
      case IpfOp::Getf:
      case IpfOp::Setf:
        return 5;
      case IpfOp::Xmul:
        return 12;
      case IpfOp::XDivS:
      case IpfOp::XDivU:
      case IpfOp::XRemS:
      case IpfOp::XRemU:
        return 45;
      case IpfOp::Fdiv:
      case IpfOp::Fsqrt:
      case IpfOp::Fpdiv:
        return 24;
      default:
        return il.ins.slotKind() == Slot::F ? 4 : 1;
    }
}

/** Is a virtual id (>= the physical file size for its class)? */
bool
isVirtual(const Ref &r)
{
    switch (r.cls) {
      case RegClass::Gr:
        return r.id >= vgr_base;
      case RegClass::Fr:
        return r.id >= vfr_base;
      case RegClass::Pr:
        return r.id >= vpr_base;
      default:
        return false;
    }
}

/** Slot capacity bookkeeping for one issue group. */
struct GroupState
{
    unsigned m = 0, i = 0, f = 0, b = 0, a = 0, total = 0;
    std::set<Ref> written;
    std::set<Ref> read;

    bool
    fits(const Il &il) const
    {
        Slot s = il.ins.slotKind();
        unsigned nm = m + (s == Slot::M);
        unsigned ni = i + (s == Slot::I) +
                      (il.ins.op == IpfOp::Movl ? 1 : 0);
        unsigned nf = f + (s == Slot::F);
        unsigned nb = b + (s == Slot::B);
        unsigned na = a + (s == Slot::A);
        unsigned nt = total + 1 + (il.ins.op == IpfOp::Movl ? 1 : 0);
        if (nm > 2 || ni > 2 || nf > 2 || nb > 3 || nt > 6)
            return false;
        if (nm + ni + na > 4)
            return false;
        // No intra-group RAW: sources must not be written in this group.
        Ref rs[5];
        unsigned nr = reads(il, rs);
        for (unsigned k = 0; k < nr; ++k) {
            if (written.count(rs[k])) {
                // Exception: a branch may consume a predicate computed
                // in the same group.
                if (!(rs[k].cls == RegClass::Pr && s == Slot::B))
                    return false;
            }
        }
        // No intra-group WAW or WAR-on-same-group-read.
        Ref ws[3];
        unsigned nw = writes(il, ws);
        for (unsigned k = 0; k < nw; ++k) {
            if (written.count(ws[k]))
                return false;
            if (read.count(ws[k]))
                return false;
        }
        return true;
    }

    void
    add(const Il &il)
    {
        Slot s = il.ins.slotKind();
        m += (s == Slot::M);
        i += (s == Slot::I) + (il.ins.op == IpfOp::Movl ? 1 : 0);
        f += (s == Slot::F);
        b += (s == Slot::B);
        a += (s == Slot::A);
        total += 1 + (il.ins.op == IpfOp::Movl ? 1 : 0);
        Ref ws[3];
        unsigned nw = writes(il, ws);
        for (unsigned k = 0; k < nw; ++k)
            written.insert(ws[k]);
        Ref rs[5];
        unsigned nr = reads(il, rs);
        for (unsigned k = 0; k < nr; ++k)
            read.insert(rs[k]);
    }

    void
    clear()
    {
        m = i = f = b = a = total = 0;
        written.clear();
        read.clear();
    }
};

/** Renamer: linear-scan mapping of virtual ids to the physical pools. */
class Renamer
{
  public:
    Renamer()
    {
        for (unsigned k = 0; k < ipf::gr_rename_count; ++k)
            free_gr_.push_back(
                static_cast<int16_t>(ipf::gr_rename_base + k));
        for (unsigned k = 0; k < ipf::fr_rename_count; ++k)
            free_fr_.push_back(
                static_cast<int16_t>(ipf::fr_rename_base + k));
        for (unsigned k = 0; k < ipf::pr_rename_count; ++k)
            free_pr_.push_back(
                static_cast<int16_t>(ipf::pr_rename_base + k));
    }

    /** Physical id for a reference; allocates on first definition. */
    bool
    resolve(Ref ref, bool is_def, int16_t *out)
    {
        if (!isVirtual(ref)) {
            *out = ref.id;
            return true;
        }
        auto it = map_.find(ref);
        if (it != map_.end()) {
            *out = it->second;
            return true;
        }
        if (!is_def) {
            // Use of a never-defined virtual register: the value is
            // undefined (e.g. a dead path); map it to zero/scratch.
            *out = ref.cls == RegClass::Gr ? ipf::gr_zero
                 : ref.cls == RegClass::Fr ? ipf::fr_zero
                                           : ipf::pr_t0;
            return true;
        }
        std::vector<int16_t> *pool =
            ref.cls == RegClass::Gr ? &free_gr_
            : ref.cls == RegClass::Fr ? &free_fr_
                                      : &free_pr_;
        if (pool->empty()) {
            el_warn("renamer: %s pool exhausted",
                    ref.cls == RegClass::Gr ? "GR"
                    : ref.cls == RegClass::Fr ? "FR" : "PR");
            return false;
        }
        int16_t phys = pool->back();
        pool->pop_back();
        map_[ref] = phys;
        return (*out = phys), true;
    }

    void
    release(Ref ref)
    {
        auto it = map_.find(ref);
        if (it == map_.end())
            return;
        std::vector<int16_t> *pool =
            ref.cls == RegClass::Gr ? &free_gr_
            : ref.cls == RegClass::Fr ? &free_fr_
                                      : &free_pr_;
        pool->push_back(it->second);
        map_.erase(it);
    }

    /** Final (or current) mapping of a virtual id, if any. */
    bool
    lookup(Ref ref, int16_t *out) const
    {
        auto it = map_.find(ref);
        if (it == map_.end())
            return false;
        *out = it->second;
        return true;
    }

  private:
    std::map<Ref, int16_t> map_;
    std::vector<int16_t> free_gr_, free_fr_, free_pr_;
};

} // namespace

ScheduleResult
schedule(std::vector<Il> ils, ipf::CodeCache &cache,
         const Options &options, bool reorder, bool speculate_loads,
         std::vector<RecoveryMap> *recovery)
{
    ScheduleResult result;
    const size_t n_in = ils.size();

    // ----- 1. Load speculation ---------------------------------------
    // Reorderable guest loads become ld.s; a chk.s at the original
    // position re-raises deferred faults by exiting to a cold
    // re-execution of the commit region (ExitReason::Resync).
    bool has_labels = false;
    for (const Il &il : ils)
        if (il.target_il >= 0)
            has_labels = true;
    if (reorder && speculate_loads && !has_labels) {
        std::vector<Il> out;
        out.reserve(ils.size() + 8);
        for (Il &il : ils) {
            if (il.is_load && il.ins.op == IpfOp::Ld && il.qp == 0 &&
                il.ins.imm == 0 && il.dst >= vgr_base) {
                il.ins.spec = ipf::Spec::S;
                il.is_ordered = false;
                out.push_back(il);
                Il chk;
                chk.ins.op = IpfOp::ChkS;
                chk.src1 = il.dst;
                chk.ins.target = -1;
                chk.ins.exit_payload = il.ins.exit_payload;
                chk.ins.meta = il.ins.meta;
                chk.region = il.region;
                chk.is_ordered = true;
                out.push_back(chk);
                ++result.loads_speculated;
            } else {
                out.push_back(il);
            }
        }
        ils = std::move(out);
    }
    const size_t n = ils.size();

    // ----- 2. Dead-IL elimination --------------------------------------
    if (reorder) {
        bool changed = true;
        while (changed) {
            changed = false;
            std::set<Ref> used;
            for (const Il &il : ils) {
                if (il.dead)
                    continue;
                Ref rs[5];
                unsigned nr = reads(il, rs);
                for (unsigned k = 0; k < nr; ++k)
                    used.insert(rs[k]);
            }
            // Recovery maps keep their referenced registers alive.
            if (recovery) {
                for (const RecoveryMap &m : *recovery) {
                    for (const Loc &l : m.gpr)
                        if (l.kind == Loc::Kind::Gr)
                            used.insert({RegClass::Gr, l.reg});
                    for (const Loc *l : {&m.flags.wide, &m.flags.a,
                                         &m.flags.b, &m.flags.res}) {
                        if (l->kind == Loc::Kind::Gr)
                            used.insert({RegClass::Gr, l->reg});
                    }
                }
            }
            for (Il &il : ils) {
                if (il.dead || hasSideEffects(il))
                    continue;
                Ref ws[3];
                unsigned nw = writes(il, ws);
                if (nw == 0)
                    continue;
                bool any_used = false;
                for (unsigned k = 0; k < nw; ++k) {
                    if (!isVirtual(ws[k]) || used.count(ws[k]))
                        any_used = true;
                }
                if (!any_used) {
                    il.dead = true;
                    ++result.dead_removed;
                    changed = true;
                }
            }
        }
    }

    // Compact away dead ILs, remembering index remapping for labels.
    std::vector<Il> live;
    std::vector<int32_t> old_to_new(n, -1);
    {
        // Build an original-index list first (labels refer to the
        // pre-speculation indices only when no labels exist, handled
        // above; here indices refer to the current `ils`).
        for (size_t k = 0; k < ils.size(); ++k) {
            if (!ils[k].dead) {
                old_to_new[k] = static_cast<int32_t>(live.size());
                live.push_back(ils[k]);
            }
        }
        for (Il &il : live) {
            if (il.target_il >= 0) {
                int32_t t = old_to_new[il.target_il];
                el_assert(t >= 0, "branch target eliminated");
                il.target_il = t;
            }
        }
    }

    // ----- 3. Ordering -----------------------------------------------
    // Windows are delimited by branches/exits and by branch targets.
    std::vector<size_t> order;
    order.reserve(live.size());
    std::vector<char> is_window_start(live.size() + 1, 0);
    for (const Il &il : live)
        if (il.target_il >= 0)
            is_window_start[il.target_il] = 1;

    auto is_barrier = [](const Il &il) {
        switch (il.ins.op) {
          case IpfOp::Br:
          case IpfOp::BrCall:
          case IpfOp::BrRet:
          case IpfOp::BrInd:
          case IpfOp::Exit:
            return true;
          default:
            return false;
        }
    };

    // For branch targets: the final order position where each window
    // begins (branches always land on window starts).
    std::map<size_t, size_t> window_first_pos;

    size_t w_start = 0;
    while (w_start < live.size()) {
        size_t w_end = w_start;
        while (w_end < live.size()) {
            if (w_end > w_start && is_window_start[w_end])
                break;
            bool barrier = is_barrier(live[w_end]);
            ++w_end;
            if (barrier)
                break;
        }

        window_first_pos[w_start] = order.size();
        if (!reorder || w_end - w_start <= 2) {
            for (size_t k = w_start; k < w_end; ++k)
                order.push_back(k);
        } else {
            // List scheduling within [w_start, w_end).
            size_t cnt = w_end - w_start;
            std::vector<std::vector<int>> succ(cnt);
            std::vector<int> npred(cnt, 0);
            std::vector<int> prio(cnt, 0);
            std::map<Ref, int> last_def;
            std::map<Ref, std::vector<int>> readers;
            int last_ordered = -1;
            int last_store = -1;
            std::vector<int> loads_since_store;
            auto add_edge = [&](int from, int to) {
                if (from == to)
                    return;
                succ[from].push_back(to);
                ++npred[to];
            };
            for (size_t k = 0; k < cnt; ++k) {
                const Il &il = live[w_start + k];
                Ref rs[5];
                unsigned nr = reads(il, rs);
                for (unsigned q = 0; q < nr; ++q) {
                    auto it = last_def.find(rs[q]);
                    if (it != last_def.end())
                        add_edge(it->second, static_cast<int>(k));
                    readers[rs[q]].push_back(static_cast<int>(k));
                }
                // Recovery references act as reads at faulting points.
                if (recovery && il.ins.meta.commit_id >= 0 &&
                    il.is_ordered &&
                    il.ins.meta.commit_id <
                        static_cast<int32_t>(recovery->size())) {
                    const RecoveryMap &m =
                        (*recovery)[il.ins.meta.commit_id];
                    auto touch = [&](const Loc &l) {
                        if (l.kind != Loc::Kind::Gr)
                            return;
                        Ref ref{RegClass::Gr, l.reg};
                        auto it = last_def.find(ref);
                        if (it != last_def.end())
                            add_edge(it->second, static_cast<int>(k));
                        readers[ref].push_back(static_cast<int>(k));
                    };
                    for (const Loc &l : m.gpr)
                        touch(l);
                    touch(m.flags.wide);
                    touch(m.flags.a);
                    touch(m.flags.b);
                    touch(m.flags.res);
                }
                Ref ws[3];
                unsigned nw = writes(il, ws);
                for (unsigned q = 0; q < nw; ++q) {
                    auto it = last_def.find(ws[q]);
                    if (it != last_def.end())
                        add_edge(it->second, static_cast<int>(k)); // WAW
                    for (int rd : readers[ws[q]])
                        add_edge(rd, static_cast<int>(k)); // WAR
                    last_def[ws[q]] = static_cast<int>(k);
                    readers[ws[q]].clear();
                }
                if (il.is_ordered) {
                    if (last_ordered >= 0)
                        add_edge(last_ordered, static_cast<int>(k));
                    last_ordered = static_cast<int>(k);
                }
                // Memory dependences: control speculation (ld.s) only
                // defers faults — it gives no protection against stores,
                // so every load stays ordered after the previous store,
                // and stores stay after earlier loads.
                bool is_mem_load = il.ins.op == IpfOp::Ld ||
                                   il.ins.op == IpfOp::Ldf;
                bool is_mem_store = il.ins.op == IpfOp::St ||
                                    il.ins.op == IpfOp::Stf;
                if (is_mem_load) {
                    if (last_store >= 0)
                        add_edge(last_store, static_cast<int>(k));
                    loads_since_store.push_back(static_cast<int>(k));
                }
                if (is_mem_store) {
                    for (int ld : loads_since_store)
                        add_edge(ld, static_cast<int>(k));
                    loads_since_store.clear();
                    last_store = static_cast<int>(k);
                }
                // Region boundaries: an IL may not cross into an earlier
                // region's territory; approximate with edges from the
                // previous region's last ordered IL (covered above since
                // region closers are ordered).
            }
            // Critical-path priorities.
            for (size_t k = cnt; k-- > 0;) {
                int best = 0;
                for (int s : succ[k])
                    best = std::max(best, prio[s]);
                prio[k] = best + static_cast<int>(latencyOf(live[w_start + k]));
            }
            // Ready-list scheduling (stable on program order).
            std::vector<char> done(cnt, 0);
            size_t emitted = 0;
            std::vector<int> ready;
            for (size_t k = 0; k < cnt; ++k)
                if (npred[k] == 0)
                    ready.push_back(static_cast<int>(k));
            while (emitted < cnt) {
                el_assert(!ready.empty(), "scheduler deadlock");
                // Pick the highest-priority ready IL (ties: program
                // order).
                size_t best_idx = 0;
                for (size_t q = 1; q < ready.size(); ++q) {
                    if (prio[ready[q]] > prio[ready[best_idx]] ||
                        (prio[ready[q]] == prio[ready[best_idx]] &&
                         ready[q] < ready[best_idx])) {
                        best_idx = q;
                    }
                }
                int pick = ready[best_idx];
                ready.erase(ready.begin() + best_idx);
                order.push_back(w_start + pick);
                done[pick] = 1;
                ++emitted;
                for (int s : succ[pick]) {
                    if (--npred[s] == 0)
                        ready.push_back(s);
                }
            }
        }
        w_start = w_end;
    }

    // ----- 4. Group packing + renaming + emission ----------------------
    // Lifetimes in final order (for the renamer).
    std::vector<size_t> pos_of(live.size(), 0);
    for (size_t pos = 0; pos < order.size(); ++pos)
        pos_of[order[pos]] = pos;
    std::map<Ref, size_t> last_use;
    std::map<Ref, size_t> first_def;
    for (size_t pos = 0; pos < order.size(); ++pos) {
        const Il &il = live[order[pos]];
        Ref rs[5];
        unsigned nr = reads(il, rs);
        for (unsigned q = 0; q < nr; ++q)
            if (isVirtual(rs[q]))
                last_use[rs[q]] = pos;
        Ref ws[3];
        unsigned nw = writes(il, ws);
        for (unsigned q = 0; q < nw; ++q) {
            if (isVirtual(ws[q])) {
                last_use[ws[q]] = std::max(last_use[ws[q]], pos);
                if (!first_def.count(ws[q]))
                    first_def[ws[q]] = pos;
            }
        }
        if (recovery && il.ins.meta.commit_id >= 0 &&
            il.ins.meta.commit_id <
                static_cast<int32_t>(recovery->size())) {
            const RecoveryMap &m = (*recovery)[il.ins.meta.commit_id];
            auto touch = [&](const Loc &l) {
                if (l.kind == Loc::Kind::Gr &&
                    isVirtual({RegClass::Gr, l.reg})) {
                    last_use[{RegClass::Gr, l.reg}] =
                        std::max(last_use[{RegClass::Gr, l.reg}], pos);
                }
            };
            for (const Loc &l : m.gpr)
                touch(l);
            touch(m.flags.wide);
            touch(m.flags.a);
            touch(m.flags.b);
            touch(m.flags.res);
        }
    }

    // Loop backedges: a value defined before the loop and read inside it
    // is live across the whole loop body; extend such lifetimes to the
    // backedge source so the renamer does not recycle their registers.
    for (size_t k = 0; k < live.size(); ++k) {
        const Il &il = live[k];
        if (il.target_il < 0)
            continue;
        size_t src_pos = pos_of[k];
        size_t tgt_pos = pos_of[il.target_il];
        if (tgt_pos >= src_pos)
            continue; // forward branch
        for (auto &[ref, lu] : last_use) {
            auto fd = first_def.find(ref);
            size_t def_pos = fd == first_def.end() ? 0 : fd->second;
            // Only loop-invariant values (defined before the backedge
            // target, read inside the loop) are live across the edge;
            // values defined inside the loop are redefined before use
            // on re-execution.
            if (def_pos < tgt_pos && lu >= tgt_pos)
                lu = std::max(lu, src_pos);
        }
    }

    Renamer renamer;
    // Virtual -> physical map snapshots for recovery rewriting: a
    // virtual register referenced by recovery keeps a single physical
    // home for its whole lifetime, so one final map suffices.
    std::map<int16_t, int16_t> gr_final;

    result.entry = cache.nextIndex();
    result.il_to_cache.assign(n_in, -1);
    std::vector<int64_t> live_to_cache(live.size(), -1);

    GroupState group;
    int64_t group_start_cache = cache.nextIndex();
    std::vector<int64_t> emitted_cache_idx;
    emitted_cache_idx.reserve(order.size());

    auto close_group = [&](int64_t upto) {
        if (upto > group_start_cache) {
            cache.at(upto - 1).stop = true;
            ++result.groups;
        }
        group.clear();
        group_start_cache = upto;
    };

    for (size_t pos = 0; pos < order.size(); ++pos) {
        Il il = live[order[pos]];

        if (!group.fits(il))
            close_group(cache.nextIndex());

        // Rename operands.
        OperandClasses c = operandClasses(il.ins.op);
        auto do_resolve = [&](RegClass cls, int16_t id, bool is_def,
                              uint8_t *field) {
            if (cls == RegClass::None || id < 0) {
                return true;
            }
            Ref ref{cls, id};
            int16_t phys;
            if (!renamer.resolve(ref, is_def, &phys))
                return false;
            if (cls == RegClass::Gr && isVirtual(ref))
                gr_final[id] = phys;
            *field = static_cast<uint8_t>(phys);
            return true;
        };

        ipf::Instr out = il.ins;
        bool ok = true;
        // Sources first (they may be released after this position).
        {
            const int16_t srcs[3] = {il.src1, il.src2, il.src3};
            uint8_t *fields[3] = {&out.src1, &out.src2, &out.src3};
            for (unsigned q = 0; q < 3; ++q)
                ok = ok && do_resolve(c.src[q], srcs[q], false, fields[q]);
            if (il.qp != 0) {
                uint8_t qf = 0;
                ok = ok && do_resolve(RegClass::Pr, il.qp, false, &qf);
                out.qp = qf;
            } else {
                out.qp = 0;
            }
            // Release sources whose lifetime ends here.
            Ref rs[5];
            unsigned nr = reads(il, rs);
            for (unsigned q = 0; q < nr; ++q) {
                if (isVirtual(rs[q])) {
                    auto it = last_use.find(rs[q]);
                    if (it != last_use.end() && it->second == pos)
                        renamer.release(rs[q]);
                }
            }
        }
        // Destinations.
        ok = ok && do_resolve(c.dst, il.dst, true, &out.dst);
        ok = ok && do_resolve(c.dst2, il.dst2, true, &out.dst2);
        // Post-increment address registers are read+write via src1 and
        // were resolved above.
        if (!ok)
            return result; // pool exhausted; result.ok stays false
        {
            Ref ws[3];
            unsigned nw = writes(il, ws);
            for (unsigned q = 0; q < nw; ++q) {
                if (isVirtual(ws[q])) {
                    auto it = last_use.find(ws[q]);
                    if (it != last_use.end() && it->second <= pos)
                        renamer.release(ws[q]);
                }
            }
        }

        int64_t idx = cache.emit(out);
        emitted_cache_idx.push_back(idx);
        live_to_cache[order[pos]] = idx;
        group.add(il);

        if (is_barrier(il))
            close_group(cache.nextIndex());
    }
    close_group(cache.nextIndex());
    result.end = cache.nextIndex();

    // Fix intra-block branch targets: a target denotes the START of the
    // window beginning at that IL (reordering may move the IL itself).
    for (size_t k = 0; k < live.size(); ++k) {
        int64_t ci = live_to_cache[k];
        if (ci < 0)
            continue;
        const Il &il = live[k];
        if (il.target_il >= 0) {
            auto wit = window_first_pos.find(
                static_cast<size_t>(il.target_il));
            int64_t t;
            if (wit != window_first_pos.end()) {
                t = emitted_cache_idx[wit->second];
            } else {
                t = live_to_cache[il.target_il];
            }
            el_assert(t >= 0, "unresolved intra-block target");
            cache.at(ci).target = t;
        }
    }

    // Direct mapping: old_to_new covers ils -> live; but callers hold
    // indices into the ORIGINAL (pre-speculation) buffer. Speculation
    // only inserts ILs (never reorders or removes), so map original
    // index -> post-speculation index by replaying the insertion count.
    {
        std::vector<int32_t> orig_to_spec;
        orig_to_spec.reserve(n_in);
        if (ils.size() == n_in) {
            for (size_t k = 0; k < n_in; ++k)
                orig_to_spec.push_back(static_cast<int32_t>(k));
        } else {
            // chk.s ILs are identifiable: they were inserted right after
            // speculated loads.
            size_t spec_idx = 0;
            for (size_t k = 0; k < n_in; ++k) {
                orig_to_spec.push_back(static_cast<int32_t>(spec_idx));
                const Il &cur = ils[spec_idx];
                bool speculated = cur.ins.op == IpfOp::Ld &&
                                  cur.ins.spec == ipf::Spec::S;
                ++spec_idx;
                if (speculated && spec_idx < ils.size() &&
                    ils[spec_idx].ins.op == IpfOp::ChkS) {
                    ++spec_idx;
                }
            }
        }
        for (size_t k = 0; k < n_in; ++k) {
            int32_t si = orig_to_spec[k];
            int32_t lv = old_to_new[si];
            if (lv >= 0)
                result.il_to_cache[k] = live_to_cache[lv];
        }
    }

    // Rewrite recovery maps from virtual to physical registers.
    if (recovery) {
        auto fix = [&](Loc *l) {
            if (l->kind == Loc::Kind::Gr && l->reg >= vgr_base) {
                auto it = gr_final.find(l->reg);
                if (it != gr_final.end()) {
                    l->reg = it->second;
                } else {
                    // Referenced value was never materialized (dead
                    // path); point at r0.
                    l->reg = ipf::gr_zero;
                }
            }
        };
        for (RecoveryMap &m : *recovery) {
            for (Loc &l : m.gpr)
                fix(&l);
            fix(&m.flags.wide);
            fix(&m.flags.a);
            fix(&m.flags.b);
            fix(&m.flags.res);
        }
    }

    result.ok = true;
    return result;
}

} // namespace el::core
