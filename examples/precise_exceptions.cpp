/**
 * @file
 * Precise exceptions in optimized code (paper section 4): a fault lands
 * deep inside a hot, reordered, register-renamed trace; the runtime
 * rebuilds the exact IA-32 state from the commit-point reconstruction
 * maps and delivers it to the application's handler — which resumes
 * execution. The same program runs under the reference interpreter to
 * prove the states match, which is also what a debugger running on top
 * of the translator would observe.
 */

#include <cstdio>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"

using namespace el;
using namespace el::ia32;
using guest::Layout;

int
main()
{
    Assembler as(Layout::code_base);
    Label handler = as.label(), cont = as.label();

    // Register the fault handler (address discovered via call/pop).
    Label here = as.label();
    as.call(here);
    as.bind(here);
    as.popR(RegEbx);
    as.aluRI(Op::Add, RegEbx, 96); // handler lives 96 bytes ahead
    as.movRI(RegEax, btlib::linux_abi::nr_set_handler);
    as.intN(0x80);

    // A hot loop that walks a buffer and eventually falls off the end
    // of mapped memory — the faulting iteration is deep inside
    // optimized code.
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEcx, 100000);
    as.movRI(RegEax, 0);
    Label top = as.label();
    as.bind(top);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.movMR(memb(RegEbx, 0), RegEax);
    as.aluRI(Op::Add, RegEbx, 64);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.bind(cont);
    // After the handler resumes here: report how far we got.
    as.movRR(RegEbx, RegEsi); // esi = faulting EIP captured by handler
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.aluRI(Op::And, RegEbx, 0x7f);
    as.intN(0x80);

    while (as.pc() < Layout::code_base + 5 + 96)
        as.nop();
    as.bind(handler);
    // Handler receives: eax=fault kind, ebx=address, ecx=faulting EIP.
    as.movRR(RegEsi, RegEcx);
    as.jmp(cont);

    guest::Image img;
    img.name = "precise";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish());
    img.addData(Layout::data_base, 0x40000); // deliberately small

    core::Options hot;
    hot.heat_threshold = 32;
    hot.hot_batch = 1;

    harness::Outcome ref = harness::runInterpreter(img, btlib::OsAbi::Linux);
    harness::TranslatedRun tr =
        harness::runTranslated(img, btlib::OsAbi::Linux, hot);

    std::printf("interpreter : exit=%d (low bits of faulting EIP)\n",
                ref.exit_code);
    std::printf("IA-32 EL    : exit=%d\n", tr.outcome.exit_code);
    std::printf("hot traces built: %llu, commit points: %llu\n",
                (unsigned long long)
                    tr.runtime->translator().stats.get("xlate.hot_blocks"),
                (unsigned long long)
                    tr.runtime->translator().stats.get(
                        "hot.commit_points"));
    std::printf("faults delivered through BTLib: %llu\n",
                (unsigned long long)
                    tr.runtime->stats().get("faults.delivered"));
    std::string why;
    bool same = ref.final_state.equalsArch(tr.outcome.final_state, &why);
    std::printf("final state after handler resume: %s%s%s\n",
                same ? "IDENTICAL to interpreter" : "MISMATCH: ",
                same ? "" : why.c_str(),
                same ? " (precise reconstruction worked)" : "");
    return same ? 0 : 1;
}
