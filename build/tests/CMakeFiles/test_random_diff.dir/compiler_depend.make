# Empty compiler generated dependencies file for test_random_diff.
# This may be replaced when dependencies are built.
