/**
 * @file
 * Unit tests for the support library: bit utilities, RNG determinism,
 * statistics containers, and the string formatter.
 */

#include <gtest/gtest.h>

#include "support/bitfield.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/strfmt.hh"

namespace el
{
namespace
{

TEST(Bitfield, BitsExtraction)
{
    EXPECT_EQ(bits(0xdeadbeefULL, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeefULL, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeefULL, 0, 64), 0xdeadbeefULL);
    EXPECT_EQ(bit(0x8, 3), 1u);
    EXPECT_EQ(bit(0x8, 2), 0u);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 8, 8, 0xab), 0xab00ULL);
    EXPECT_EQ(insertBits(0xffffULL, 4, 4, 0), 0xff0fULL);
    EXPECT_EQ(insertBits(0, 0, 64, 0x1234), 0x1234ULL);
}

TEST(Bitfield, SignExtension)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0xffffffffULL, 32), -1);
    EXPECT_EQ(sext(0x7fffffffULL, 32), 0x7fffffff);
}

TEST(Bitfield, Alignment)
{
    EXPECT_TRUE(isAligned(0x1000, 16));
    EXPECT_FALSE(isAligned(0x1001, 2));
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200ULL);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300ULL);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200ULL);
}

TEST(Bitfield, TruncToSize)
{
    EXPECT_EQ(truncToSize(0x123456789abcdef0ULL, 1), 0xf0ULL);
    EXPECT_EQ(truncToSize(0x123456789abcdef0ULL, 2), 0xdef0ULL);
    EXPECT_EQ(truncToSize(0x123456789abcdef0ULL, 4), 0x9abcdef0ULL);
    EXPECT_EQ(truncToSize(0x123456789abcdef0ULL, 8),
              0x123456789abcdef0ULL);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.range(10);
        EXPECT_LT(v, 10u);
        int64_t w = r.between(-5, 5);
        EXPECT_GE(w, -5);
        EXPECT_LE(w, 5);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Strfmt, Basic)
{
    EXPECT_EQ(strfmt("x=%d", 42), "x=42");
    EXPECT_EQ(strfmt("%s-%04x", "ab", 0x1f), "ab-001f");
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(StatGroup, AddAndRatio)
{
    StatGroup g;
    g.add("a", 10);
    g.add("a", 5);
    g.set("b", 30);
    EXPECT_EQ(g.get("a"), 15u);
    EXPECT_EQ(g.get("missing"), 0u);
    EXPECT_DOUBLE_EQ(g.ratio("a", "b"), 0.5);
    EXPECT_DOUBLE_EQ(g.ratio("a", "missing"), 0.0);
    g.clear();
    EXPECT_EQ(g.get("a"), 0u);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h(0, 10, 5);
    h.sample(5);
    h.sample(15);
    h.sample(95);  // overflow
    h.sample(-1);  // underflow
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (5 + 15 + 95 - 1) / 4.0);
}

TEST(StatGroup, MergeAccumulates)
{
    StatGroup a;
    a.add("shared", 5);
    a.add("only_a", 3);
    StatGroup b;
    b.add("shared", 2);
    b.add("only_b", 7);
    a.merge(b);
    EXPECT_EQ(a.get("shared"), 7u);
    EXPECT_EQ(a.get("only_a"), 3u);
    EXPECT_EQ(a.get("only_b"), 7u);
    // Merging an empty group changes nothing.
    a.merge(StatGroup());
    EXPECT_EQ(a.get("shared"), 7u);
}

TEST(Histogram, PercentileInterpolates)
{
    Histogram h(0, 10, 10);
    for (int v = 0; v < 100; ++v)
        h.sample(v); // uniform over [0, 100)
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(25), 25.0);
}

TEST(Histogram, PercentileClamps)
{
    Histogram empty(5, 10, 4);
    EXPECT_DOUBLE_EQ(empty.percentile(50), 5.0); // empty -> lo

    Histogram under(0, 10, 2);
    under.sample(-5, 10);
    EXPECT_DOUBLE_EQ(under.percentile(50), 0.0); // underflow -> lo

    Histogram over(0, 10, 2);
    over.sample(100, 10);
    EXPECT_DOUBLE_EQ(over.percentile(50), 20.0); // overflow -> top edge
}

TEST(Histogram, NonPositiveWidthClampsToOne)
{
    Histogram h(0, 0, 4);
    EXPECT_EQ(h.bucketWidth(), 1);
    h.sample(2); // must not divide by zero
    EXPECT_EQ(h.buckets()[2], 1u);

    Histogram neg(0, -7, 4);
    EXPECT_EQ(neg.bucketWidth(), 1);
}

TEST(Histogram, DumpRendersBuckets)
{
    Histogram h(0, 10, 2);
    h.sample(5, 3);
    h.sample(15);
    h.sample(-1);
    h.sample(100);
    std::string out = h.dump();
    EXPECT_NE(out.find("(underflow)"), std::string::npos);
    EXPECT_NE(out.find("(overflow)"), std::string::npos);
    EXPECT_NE(out.find("#"), std::string::npos);
    EXPECT_NE(out.find("[       0,       10)"), std::string::npos);
}

TEST(Histogram, DumpOfEmptyHistogramIsSafe)
{
    Histogram h(0, 10, 3);
    std::string out = h.dump(); // peak is clamped; no zero divisor
    EXPECT_NE(out.find("[       0,       10)"), std::string::npos);
    EXPECT_EQ(out.find("#"), std::string::npos); // all bars empty
}

TEST(Histogram, DumpWithSinglePopulatedBucket)
{
    Histogram h(0, 10, 4);
    h.sample(25, 7); // only bucket [20, 30) has samples
    std::string out = h.dump();
    // The populated bucket carries the full-scale bar; the empty
    // buckets render without dividing by any zero count.
    EXPECT_NE(out.find(std::string(40, '#')), std::string::npos);
    EXPECT_DOUBLE_EQ(h.percentile(50), 25.0);
}

TEST(Histogram, DumpWithHugeCountsDoesNotOverflow)
{
    Histogram h(0, 10, 2);
    h.sample(5, 1ull << 62); // 40 * n would overflow uint64_t
    h.sample(15, 1ull << 61);
    std::string out = h.dump();
    EXPECT_NE(out.find(std::string(40, '#')), std::string::npos);
    EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
}

TEST(Table, Renders)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Geomean, Values)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace el
