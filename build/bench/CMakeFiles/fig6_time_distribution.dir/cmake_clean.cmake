file(REMOVE_RECURSE
  "CMakeFiles/fig6_time_distribution.dir/fig6_time_distribution.cc.o"
  "CMakeFiles/fig6_time_distribution.dir/fig6_time_distribution.cc.o.d"
  "fig6_time_distribution"
  "fig6_time_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
