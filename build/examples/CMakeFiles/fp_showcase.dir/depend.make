# Empty dependencies file for fp_showcase.
# This may be replaced when dependencies are built.
