#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files and flag scalar regressions.

Usage:
    bench_diff.py [--tolerance=0.15] <baseline.json> <current.json>
    bench_diff.py --sweep [--tolerance=0.15] <baseline_dir> <current_dir>
    bench_diff.py --list <report.json>
    bench_diff.py --attribute <base_report.json> <cur_report.json>

Each bench binary writes a machine-readable report with a "scalars"
object (headline aggregates) and an optional "tolerances" object
(per-scalar relative tolerances recorded by the bench itself via
Report::scalar(key, value, tolerance)). This tool compares the scalars
of a current run against a committed baseline:

  - a scalar missing from the current run is a failure (the bench lost
    a headline number);
  - a scalar whose relative change versus the baseline exceeds its
    tolerance (per-scalar if recorded, else --tolerance) is a failure;
  - new scalars only present in the current run are reported but pass
    (the baseline just predates them).

--sweep compares two directories: every BENCH_<name>.json present in
both is diffed as above, and a report present on only one side is
called out by name — a baseline whose bench no longer emits a report
is a "WARN ... baseline present but no current report" (the committed
baseline went stale, or the bench silently stopped running), and a
current report with no committed baseline is a "WARN ... new bench
without a committed baseline" (commit one). One-sided reports warn;
only out-of-tolerance pairs fail the sweep.

--list prints the compared keys of a single report (value and the
tolerance that would apply) without comparing anything — handy for
seeing what a committed baseline actually pins down.

When a pair of reports fails, the diff also ranks the top attributed
contributors to the movement: bench rows carry the Figure-6 cycle
attribution per configuration, so "which phase of which row moved
most" prints right under the failing scalar instead of requiring a
separate archaeology session.

--attribute hands off to the `el_diff` binary for full per-block
attribution of two `el_run --report-json` documents (NOT bench
reports). The binary is found via --el-diff-bin=<path>, then the
EL_DIFF_BIN environment variable, then $PATH; its exit status is
propagated (3 = incompatible runs).

Exit status: 0 when everything is within tolerance, 1 on any failure,
2 on unreadable/malformed input. CI runs this warn-only (the simulator
is deterministic, but headline numbers legitimately move when the
translator changes; the diff is a visibility tool, not a gate).
"""

import json
import numbers
import os
import subprocess
import sys


def load(path, role):
    """Read one bench report; exit 2 with a role-labeled message on
    any problem so CI logs say *which* input was bad."""
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"bench_diff: {role} {path}: cannot read: {e.strerror}",
              file=sys.stderr)
        sys.exit(2)
    except ValueError as e:
        print(f"bench_diff: {role} {path}: malformed JSON: {e}",
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or "scalars" not in doc:
        print(f"bench_diff: {role} {path}: not a bench report "
              f"(no scalars object)", file=sys.stderr)
        sys.exit(2)
    scalars = doc["scalars"]
    if not isinstance(scalars, dict) or not all(
            isinstance(v, numbers.Real) for v in scalars.values()):
        print(f"bench_diff: {role} {path}: scalars must map keys to "
              f"numbers", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc.get("tolerances", {}), dict):
        print(f"bench_diff: {role} {path}: tolerances must be an "
              f"object", file=sys.stderr)
        sys.exit(2)
    return doc


def relative_change(base, cur):
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return abs(cur - base) / abs(base)


def list_report(path, default_tol):
    doc = load(path, "report")
    scalars = doc["scalars"]
    tolerances = doc.get("tolerances", {})
    print(f"bench: {doc.get('bench')} ({len(scalars)} scalar(s))")
    for key in sorted(scalars):
        tol = tolerances.get(key, default_tol)
        origin = "per-scalar" if key in tolerances else "default"
        print(f"  {key}: {scalars[key]:.6g} "
              f"(tol {tol * 100.0:.0f}%, {origin})")
    return 0


ATTRIBUTION_PHASES = ("cold_code", "hot_code", "btgeneric",
                      "fault_handling", "native", "idle")


def attribution_contributors(baseline, current, top=3):
    """Rank (row label, phase) attribution deltas between two bench
    reports, largest absolute cycle movement first. Rows are matched
    by label; rows without attribution (no translated run) are
    skipped."""
    def attr_rows(doc):
        out = {}
        for row in doc.get("rows", []):
            if not isinstance(row, dict):
                continue
            attr = row.get("attribution")
            if isinstance(attr, dict):
                out[row.get("label")] = attr
        return out

    base_rows = attr_rows(baseline)
    deltas = []
    for label, attr in attr_rows(current).items():
        base = base_rows.get(label)
        if base is None:
            continue
        for phase in ATTRIBUTION_PHASES:
            d = attr.get(phase, 0) - base.get(phase, 0)
            if d:
                deltas.append((abs(d), label, phase, d))
    deltas.sort(key=lambda t: (-t[0], t[1], t[2]))
    return deltas[:top]


def diff_reports(baseline, current, default_tol):
    """Compare two loaded reports; print per-scalar verdicts and
    return the number of out-of-tolerance scalars."""
    base_scalars = baseline["scalars"]
    cur_scalars = current["scalars"]
    tolerances = baseline.get("tolerances", {})

    failures = 0
    print(f"bench: {baseline.get('bench')}")
    for key in sorted(base_scalars):
        base = base_scalars[key]
        tol = tolerances.get(key, default_tol)
        if key not in cur_scalars:
            print(f"  FAIL {key}: missing from current run "
                  f"(baseline {base:.6g})")
            failures += 1
            continue
        cur = cur_scalars[key]
        change = relative_change(base, cur)
        verdict = "ok  " if change <= tol else "FAIL"
        if change > tol:
            failures += 1
        print(f"  {verdict} {key}: {base:.6g} -> {cur:.6g} "
              f"({change * 100.0:+.1f}% vs tol {tol * 100.0:.0f}%)")
    for key in sorted(set(cur_scalars) - set(base_scalars)):
        print(f"  new  {key}: {cur_scalars[key]:.6g} (not in baseline)")
    if failures:
        contributors = attribution_contributors(baseline, current)
        if contributors:
            print("  top attributed contributors to the movement:")
            for _, label, phase, d in contributors:
                print(f"    {label} / {phase}: {d:+.0f} cycles")
    return failures


def sweep(base_dir, cur_dir, default_tol):
    """Pair BENCH_*.json reports across two directories by filename.
    One-sided reports are named warnings, never silent skips; only
    out-of-tolerance pairs fail."""
    def reports(d):
        try:
            names = os.listdir(d)
        except OSError as e:
            print(f"bench_diff: {d}: cannot list: {e.strerror}",
                  file=sys.stderr)
            sys.exit(2)
        return {n for n in names
                if n.startswith("BENCH_") and n.endswith(".json")}

    base_names = reports(base_dir)
    cur_names = reports(cur_dir)
    failures = 0
    warnings = 0
    for name in sorted(base_names - cur_names):
        bench = name[len("BENCH_"):-len(".json")]
        print(f"WARN {bench}: baseline present but no current report "
              f"(did the bench stop running or emitting {name}?)")
        warnings += 1
    for name in sorted(cur_names - base_names):
        bench = name[len("BENCH_"):-len(".json")]
        print(f"WARN {bench}: new bench without a committed baseline "
              f"(commit {os.path.join(base_dir, name)})")
        warnings += 1
    for name in sorted(base_names & cur_names):
        baseline = load(os.path.join(base_dir, name), "baseline")
        current = load(os.path.join(cur_dir, name), "current")
        if baseline.get("bench") != current.get("bench"):
            print(f"bench_diff: {name}: comparing different benches: "
                  f"{baseline.get('bench')} vs {current.get('bench')}",
                  file=sys.stderr)
            sys.exit(2)
        failures += diff_reports(baseline, current, default_tol)
    print(f"bench_diff: sweep over {len(base_names & cur_names)} "
          f"paired report(s), {warnings} warning(s), "
          f"{failures} scalar(s) beyond tolerance")
    return 1 if failures else 0


def attribute(paths, el_diff_bin):
    """Shell out to el_diff for per-block attribution of two el_run
    reports; propagate its exit status."""
    binary = el_diff_bin or os.environ.get("EL_DIFF_BIN") or "el_diff"
    try:
        return subprocess.call([binary] + paths)
    except OSError as e:
        print(f"bench_diff: cannot run {binary}: {e.strerror} "
              f"(build el_diff, then point --el-diff-bin= or the "
              f"EL_DIFF_BIN environment variable at it)",
              file=sys.stderr)
        return 2


def main(argv):
    default_tol = 0.15
    list_mode = False
    sweep_mode = False
    attribute_mode = False
    el_diff_bin = ""
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            try:
                default_tol = float(arg[len("--tolerance="):])
            except ValueError:
                print(f"bench_diff: bad --tolerance value: "
                      f"{arg[len('--tolerance='):]!r}", file=sys.stderr)
                return 2
        elif arg == "--list":
            list_mode = True
        elif arg == "--sweep":
            sweep_mode = True
        elif arg == "--attribute":
            attribute_mode = True
        elif arg.startswith("--el-diff-bin="):
            el_diff_bin = arg[len("--el-diff-bin="):]
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        elif arg.startswith("-"):
            print(f"bench_diff: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)

    if attribute_mode:
        if len(paths) != 2:
            print("usage: bench_diff.py --attribute "
                  "[--el-diff-bin=<path>] <base_report.json> "
                  "<cur_report.json>", file=sys.stderr)
            return 2
        return attribute(paths, el_diff_bin)

    if list_mode:
        if len(paths) != 1:
            print("usage: bench_diff.py --list <report.json>",
                  file=sys.stderr)
            return 2
        return list_report(paths[0], default_tol)

    if sweep_mode:
        if len(paths) != 2:
            print("usage: bench_diff.py --sweep [--tolerance=N] "
                  "<baseline_dir> <current_dir>", file=sys.stderr)
            return 2
        return sweep(paths[0], paths[1], default_tol)

    if len(paths) != 2:
        print("usage: bench_diff.py [--tolerance=N] <baseline.json> "
              "<current.json>", file=sys.stderr)
        return 2

    baseline = load(paths[0], "baseline")
    current = load(paths[1], "current")
    if baseline.get("bench") != current.get("bench"):
        print(f"bench_diff: comparing different benches: "
              f"{baseline.get('bench')} vs {current.get('bench')}",
              file=sys.stderr)
        return 2

    failures = diff_reports(baseline, current, default_tol)
    if failures:
        print(f"bench_diff: {failures} scalar(s) beyond tolerance")
        return 1
    print("bench_diff: all scalars within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
