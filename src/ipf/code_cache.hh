/**
 * @file
 * The translation code cache.
 *
 * Holds the IPF instructions emitted by the translator. Instruction
 * addresses are indices into one growing vector (a simulator-friendly
 * stand-in for a real code cache's byte addresses). Supports the two
 * patching operations the paper describes:
 *  - converting an exit-to-translator stub into a direct branch once the
 *    target block is translated ("connect predecessors"), and
 *  - invalidating a block (SMC / misalignment regeneration / GC) by
 *    turning its entry into a Resync exit.
 *
 * The cache can be bounded: setCapacity() installs a cap, exhausted()
 * reports when the next translation would not fit (or when the
 * fault-injection harness forces synthetic exhaustion), and flushAll()
 * implements the generation-style GC — drop everything, bump the
 * generation counter, and let the translator rebuild from scratch.
 * Stale cache indices from older generations are detected by comparing
 * generation() before and after any call that may translate.
 */

#ifndef EL_IPF_CODE_CACHE_HH
#define EL_IPF_CODE_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ipf/insn.hh"

namespace el::ipf
{

/** Growing container of translated IPF code with patch support. */
class CodeCache
{
  public:
    /** Append one instruction; returns its index. */
    int64_t
    emit(const Instr &instr)
    {
        code_.push_back(instr);
        if (code_.size() > high_water_)
            high_water_ = code_.size();
        return static_cast<int64_t>(code_.size()) - 1;
    }

    /** Current end-of-cache index (where the next block will start). */
    int64_t nextIndex() const { return static_cast<int64_t>(code_.size()); }

    size_t size() const { return code_.size(); }

    const Instr &at(int64_t idx) const { return code_[idx]; }
    Instr &at(int64_t idx) { return code_[idx]; }

    /**
     * Patch the exit stub at @p idx into a direct branch to @p target.
     * Used when a block's successor becomes available.
     */
    void patchToBranch(int64_t idx, int64_t target);

    /**
     * Invalidate the block entry at @p idx: further executions exit to
     * the translator with @p reason.
     */
    void invalidateEntry(int64_t idx, ExitReason reason, int64_t payload);

    /** Total instructions emitted with each bucket tag (code-size stats). */
    uint64_t countBucket(Bucket bucket) const;

    // ----- bounded-cache support (flush-and-retranslate GC) -----------

    /** Install a capacity in instructions; 0 means unbounded. */
    void setCapacity(size_t cap) { capacity_ = cap; }
    size_t capacity() const { return capacity_; }

    /** True if @p idx belongs to the current generation's code. */
    bool contains(int64_t idx) const
    {
        return idx >= 0 && idx < nextIndex();
    }

    /**
     * Would a translation needing up to @p headroom instructions
     * overflow the cap? Also true when the fault-injection harness
     * forces synthetic exhaustion (FaultSite::CacheExhaust).
     */
    bool exhausted(size_t headroom);

    /** True once the cap itself has been crossed (hard overflow). */
    bool
    overCapacity() const
    {
        return capacity_ != 0 && code_.size() > capacity_;
    }

    /** Drop all translated code and start a new generation. */
    void flushAll();

    /** Generation counter, bumped by every flushAll(). */
    uint64_t generation() const { return generation_; }

    /** Largest size ever reached (never reset by flushes). */
    size_t highWater() const { return high_water_; }

    // ----- asynchronous publication (hot-translation pipeline) --------

    /**
     * Publish a block staged in a private cache: append every staged
     * instruction after rebasing its intra-block branch/chk targets and
     * stamping @p final_block_id into the metadata. The append happens
     * only if the cache is still at @p expected_generation — a staged
     * translation raced by a flushAll() GC must be discarded, never
     * spliced into the new generation. Returns the base index of the
     * published code, or -1 when the generation moved.
     *
     * Serialized against other publish/patch calls by the publication
     * lock. Execution (Machine) and the cold translator stay on the
     * owning thread; the lock exists so future sharded dispatchers can
     * publish from several runtimes safely.
     */
    int64_t publish(const CodeCache &staging,
                    uint64_t expected_generation,
                    int32_t final_block_id);

    /**
     * Generation-checked patchToBranch(): patches only when the cache
     * is still at @p expected_generation (same lock as publish()).
     * Returns false when the exit belongs to a dead generation.
     */
    bool patchToBranchChecked(int64_t idx, int64_t target,
                              uint64_t expected_generation);

  private:
    std::vector<Instr> code_;
    size_t capacity_ = 0;
    size_t high_water_ = 0;
    uint64_t generation_ = 0;
    /** Publication lock (unique_ptr keeps the cache movable). */
    std::unique_ptr<std::mutex> publish_mu_ =
        std::make_unique<std::mutex>();
};

} // namespace el::ipf

#endif // EL_IPF_CODE_CACHE_HH
