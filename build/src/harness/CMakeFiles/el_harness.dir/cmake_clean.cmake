file(REMOVE_RECURSE
  "CMakeFiles/el_harness.dir/exec.cc.o"
  "CMakeFiles/el_harness.dir/exec.cc.o.d"
  "CMakeFiles/el_harness.dir/native.cc.o"
  "CMakeFiles/el_harness.dir/native.cc.o.d"
  "libel_harness.a"
  "libel_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/el_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
