/**
 * @file
 * The translation drivers: cold block generation (Figure 1), hot trace
 * selection and generation (Figure 2), block variants, and the block
 * map. The Runtime (runtime.hh) calls into this to service translator
 * exits.
 */

#ifndef EL_CORE_TRANSLATOR_HH
#define EL_CORE_TRANSLATOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/analysis.hh"
#include "core/blockinfo.hh"
#include "core/emit_env.hh"
#include "core/hot_pipeline.hh"
#include "core/options.hh"
#include "core/provenance.hh"
#include "core/sched.hh"
#include "ipf/code_cache.hh"
#include "mem/memory.hh"
#include "support/faultinject.hh"
#include "support/stats.hh"

namespace el::trace
{
class Tracer;
} // namespace el::trace

namespace el::flight
{
class FlightRecorder;
} // namespace el::flight

namespace el::core
{

/** Per-cold-block misalignment history driving stage transitions. */
struct MisalignHistory
{
    bool observed = false;     //!< Any misalignment in this block.
    bool force_avoid = false;  //!< Hot regeneration must avoid everywhere.
    uint8_t granularity = 1;   //!< Finest observed misalignment grain.
};

/** BTGeneric's translation engine. */
class Translator
{
  public:
    Translator(const Options &options, mem::Memory &memory,
               ipf::CodeCache &cache, uint64_t rt_base);

    /**
     * Find or create a translation entry for @p eip matching @p spec.
     * Prefers a hot version when one exists. Returns null on
     * untranslatable code (undecodable first instruction).
     */
    BlockInfo *dispatch(uint32_t eip, const SpecContext &spec);

    /** Cold-only dispatch used for Resync re-execution. */
    BlockInfo *dispatchCold(uint32_t eip, const SpecContext &spec,
                            bool fresh_variant);

    /** Translate one cold block at the given misalignment stage. */
    BlockInfo *translateCold(uint32_t eip, const SpecContext &spec,
                             MisalignStage stage);

    /**
     * Build a hot trace rooted at @p entry_eip (the block that hit the
     * heating threshold). Returns null if hot translation fails or is
     * unprofitable; the cold block then remains in use. Synchronous:
     * prepare + session + commit inline (the translation_threads == 0
     * path; the pipeline splits the same three steps across threads).
     */
    BlockInfo *translateHot(uint32_t entry_eip, const SpecContext &spec);

    // ----- asynchronous hot-session pipeline entry points ------------

    /**
     * Snapshot everything a hot session needs (region discovery, trace
     * selection from the current profile counters, per-block
     * misalignment policies, the unroll decision) into @p out. Main
     * thread only. Returns false when no viable trace exists at
     * @p entry_eip (the caller treats this like a failed session).
     */
    bool prepareHotInput(uint32_t entry_eip, const SpecContext &spec,
                         HotSessionInput *out);

    /**
     * Run one hot emission + scheduling session against a frozen
     * input, into the artifact's private staging cache. Static and
     * re-entrant: builds its own EmitEnv, touches no translator state,
     * and may run on any pipeline worker concurrently with translation
     * and guest execution. @p faults is the caller's injection stream
     * (null = no injection); workers pass a per-candidate FaultStream
     * so injection stays deterministic across thread counts.
     */
    static void runHotSession(const HotSessionInput &input,
                              const Options &options,
                              FaultStream *faults, HotArtifact *out);

    /**
     * Publish a finished session into the shared code cache: the
     * generation-checked commit step. Discards (returning null) when
     * the artifact's generation is stale — a concurrent flushAll() GC
     * means its stubs and profile offsets refer to dead state — or when
     * publication itself would overflow the cache. On success the hot
     * block is registered, cold entries are redirected and interior
     * trace blocks are covered, exactly as a synchronous session would.
     * Session statistics carried by the artifact are merged here.
     */
    BlockInfo *commitHotArtifact(HotArtifact &artifact);

    // ----- persistent artifact store (Options::persist) --------------

    /**
     * Probe the attached artifact store for hot translations at
     * @p eip and publish every usable record through the normal
     * commit path (generation check, cold-entry redirection, coverage,
     * sentinel quarantine — identical to a live session). A record
     * whose SMC-guard window no longer matches live guest memory is
     * rejected (persist.smc_rejected): the guest patched that code
     * since the store was written, and adopting it would only bounce
     * through SmcDetected forever. Returns the adopted block matching
     * @p spec, or null when nothing usable matched (the caller then
     * proceeds to cold translation).
     */
    BlockInfo *adoptPersisted(uint32_t eip, const SpecContext &spec);

    /** Does the attached store hold records at @p eip? The runtime's
     *  hot-chaining path checks this so a LinkMiss into covered code
     *  adopts the persisted trace instead of re-translating it. */
    bool persistCovers(uint32_t eip) const;

    /** Simulated cycles one session over @p input occupies a worker. */
    double
    hotSessionCost(const HotSessionInput &input) const
    {
        return options.hot_xlate_cost_per_insn *
               (static_cast<double>(input.trace_insns) * input.copies + 1);
    }

    /** Move a block to the detailed misalignment stage (cold stage 2). */
    BlockInfo *regenerateForMisalignment(uint32_t eip,
                                         const SpecContext &spec);

    /** Record a misalignment event against the owning cold block. */
    void recordMisalignment(uint32_t block_eip);

    /** Invalidate a hot block after a stage-3 misalignment event. */
    void discardHotBlock(BlockInfo *block);

    /**
     * Blacklist a translation the divergence sentinel convicted (or
     * whose fault/guard counters crossed the quarantine threshold).
     * The entry becomes a Resync exit, so stale links re-enter the
     * runtime; the sentinel's interpret gate keeps the EIP on the
     * interpreter until its cooldown allows a fresh cold translation.
     */
    void quarantineBlock(BlockInfo *block,
                         ProvCause cause = ProvCause::SentinelDivergence);

    /** Drop every translation overlapping [addr, addr+len) (SMC). */
    void invalidateRange(uint32_t addr, uint32_t len);

    /**
     * Flush-and-retranslate GC: drop the whole code cache (bumping its
     * generation), invalidate every block, clear the indirect-lookup
     * table and reclaim the profile-counter area. Execution rebuilds
     * lazily from cold translations. Counted as recover.cache_flush.
     */
    void flushCodeCache();

    /**
     * Consume the injected-abort flag: true when the most recent
     * translation failure was a fault-injection abort (the runtime then
     * falls back to the interpreter instead of raising #UD).
     */
    bool
    takeInjectedAbort()
    {
        bool f = injected_abort_;
        injected_abort_ = false;
        return f;
    }

    BlockInfo *blockById(int32_t id);

    /** Every translation block ever created, indexed by id (stable;
     *  includes invalidated blocks). Read-only, for reporting. */
    const std::vector<std::unique_ptr<BlockInfo>> &allBlocks() const
    {
        return blocks_;
    }

    /** Stop a cold block's use counter from re-registering (covered by
     *  a hot trace, an in-flight pipeline session, or a permanently
     *  failed hot translation). The Exit becomes a Nop but keeps its
     *  RegisterHot reason so enableHeat() can re-arm it. */
    void disableHeat(BlockInfo *block);

    /** Re-arm a use counter silenced by disableHeat() (a pipelined hot
     *  session failed or was discarded; the block may retry). */
    void enableHeat(BlockInfo *block);

    /**
     * Restore a block's patched direct-branch exits to LinkMiss stubs.
     * While a pipeline session for the block is in flight this keeps
     * every traversal exiting to the runtime at the block end — the
     * guest makes forward progress between exits, and each exit is an
     * adoption boundary. Links re-form lazily afterwards.
     */
    void unlinkBlockExits(BlockInfo *block);

    /** Profile-counter value read from the runtime area. */
    uint32_t readCounter(int64_t off) const;

    /** Translation statistics. */
    StatGroup stats;

    /**
     * Attach a lifecycle tracer. @p now supplies the simulated
     * timestamp for events the translator records (the Runtime passes
     * the machine's cycle counter). Main-thread only — the static
     * session path never touches the tracer.
     */
    void
    setTrace(trace::Tracer *tracer, std::function<double()> now)
    {
        trace_ = tracer;
        trace_now_ = std::move(now);
    }

    /**
     * Attach the always-on black box: the flight recorder and the
     * artifact provenance ledger, with @p now supplying simulated
     * timestamps (the Runtime passes the machine's cycle counter).
     * Main-thread only, like setTrace — static session code never
     * touches either sink, and neither charges simulated cycles.
     */
    void
    setObservers(flight::FlightRecorder *flight, ProvenanceLedger *prov,
                 std::function<double()> now)
    {
        flight_ = flight;
        prov_ = prov;
        obs_now_ = std::move(now);
    }

    /** Simulated translator cycles spent so far (charged by Runtime). */
    double pendingOverheadCycles() const { return pending_cycles_; }
    double
    takePendingOverheadCycles()
    {
        double c = pending_cycles_;
        pending_cycles_ = 0;
        return c;
    }

    /**
     * The subset of pending overhead during which the guest was stalled
     * waiting on hot translation specifically (the quantity the async
     * pipeline shrinks). Runtime drains it into "hot.stall_cycles".
     */
    double
    takePendingHotStallCycles()
    {
        double c = pending_hot_stall_;
        pending_hot_stall_ = 0;
        return c;
    }

    /** Record guest stall cycles attributed to hot translation and
     *  charge them as translator overhead (async enqueue/publish). */
    void
    chargeHotStall(double cycles)
    {
        pending_cycles_ += cycles;
        pending_hot_stall_ += cycles;
    }

    const Options &options;

  private:
    struct Variant
    {
        SpecContext spec;
        BlockInfo *block;
    };

    /** Does @p spec satisfy the entry conditions of @p block? */
    static bool specMatches(const BlockInfo &block, const SpecContext &spec);

    /**
     * Allocate @p bytes in the profile area; returns the offset, or -1
     * when the area is exhausted (callers skip their counters — the
     * block simply never registers hot).
     */
    int64_t allocProfile(uint32_t bytes);

    /** Flush ahead of a translation if the cache is near its cap. */
    void maybeFlushForRoom();

    /** Cold translation body; @p allow_flush_retry bounds recursion. */
    BlockInfo *translateColdImpl(uint32_t eip, const SpecContext &spec,
                                 MisalignStage stage,
                                 bool allow_flush_retry);

    /** Translate the final control transfer of a block/trace. Pure
     *  function of its arguments (safe on pipeline workers). */
    static void emitBlockEnd(EmitEnv &env, const BasicBlock &bb,
                             BlockInfo *info, bool trace_mode,
                             int32_t loop_target_il);

    /** Scheduling counters produced by finishInto (merged into the
     *  shared StatGroup on the main thread only). */
    struct SchedTally
    {
        uint32_t groups = 0;
        uint32_t dead_removed = 0;
        uint32_t loads_speculated = 0;
        int64_t ipf_insns = 0;
    };

    /**
     * Finish a translation into @p cache: concatenate head+body,
     * schedule, fill BlockInfo cache placement / recovery / stubs.
     * Static and re-entrant — hot sessions call it against their
     * private staging cache from worker threads.
     */
    static bool finishInto(EmitEnv &env, BlockInfo *info,
                           ipf::CodeCache &cache, const Options &options,
                           bool reorder, SchedTally *tally);

    /** finishInto against the shared cache + immediate stat merge. */
    bool finishBlock(EmitEnv &env, BlockInfo *info, bool reorder);

    /**
     * Miscompile injection: flip the low immediate bit of one emitted
     * instruction in [@p lo, @p hi) of @p cache, chosen by @p pick
     * (a deterministic uniform pick in [0, n)). The translation stays
     * structurally valid — it runs, and computes subtly wrong values —
     * which is exactly the failure class only the divergence sentinel
     * can catch. Returns false when the range has no candidate.
     */
    static bool corruptTranslation(ipf::CodeCache &cache, int64_t lo,
                                   int64_t hi,
                                   const std::function<uint64_t(uint64_t)> &pick);

    /** Select the hot trace starting at @p eip. */
    std::vector<const BasicBlock *>
    selectTrace(const Region &region, uint32_t eip, bool *loops);

    mem::Memory &mem_;
    ipf::CodeCache &cache_;
    uint64_t rt_base_;

    std::map<uint32_t, std::vector<Variant>> cold_map_;
    std::map<uint32_t, std::vector<Variant>> hot_map_;
    /** Store records already published this process -> block id, so a
     *  spec-mismatched dispatch never re-publishes a live record. Keys
     *  are only compared, never dereferenced. */
    std::map<const void *, int32_t> persist_adopted_;
    std::map<uint32_t, MisalignHistory> misalign_;
    std::vector<std::unique_ptr<BlockInfo>> blocks_;
    int64_t profile_next_ = rt::profile_base;
    double pending_cycles_ = 0;
    double pending_hot_stall_ = 0;
    bool injected_abort_ = false;

    trace::Tracer *trace_ = nullptr;  //!< Null = tracing off.
    std::function<double()> trace_now_; //!< Simulated-time source.

    /** Simulated now for the black-box sinks (0 before attachment). */
    double obsNow() const { return obs_now_ ? obs_now_() : 0; }

    /** Provenance append; one branch when the ledger is detached. */
    void
    noteProv(uint32_t eip, ProvState state, ProvCause cause,
             int32_t block_id)
    {
        if (prov_)
            prov_->note(eip, state, cause, block_id, cache_.generation(),
                        obsNow());
    }

    flight::FlightRecorder *flight_ = nullptr; //!< Null = recorder off.
    ProvenanceLedger *prov_ = nullptr;         //!< Null = ledger off.
    std::function<double()> obs_now_;          //!< Simulated-time source.
};

} // namespace el::core

#endif // EL_CORE_TRANSLATOR_HH
