# Empty compiler generated dependencies file for scalar_claims.
# This may be replaced when dependencies are built.
