file(REMOVE_RECURSE
  "CMakeFiles/el_core.dir/analysis.cc.o"
  "CMakeFiles/el_core.dir/analysis.cc.o.d"
  "CMakeFiles/el_core.dir/emit_env.cc.o"
  "CMakeFiles/el_core.dir/emit_env.cc.o.d"
  "CMakeFiles/el_core.dir/emit_env_state.cc.o"
  "CMakeFiles/el_core.dir/emit_env_state.cc.o.d"
  "CMakeFiles/el_core.dir/il.cc.o"
  "CMakeFiles/el_core.dir/il.cc.o.d"
  "CMakeFiles/el_core.dir/runtime.cc.o"
  "CMakeFiles/el_core.dir/runtime.cc.o.d"
  "CMakeFiles/el_core.dir/sched.cc.o"
  "CMakeFiles/el_core.dir/sched.cc.o.d"
  "CMakeFiles/el_core.dir/templates.cc.o"
  "CMakeFiles/el_core.dir/templates.cc.o.d"
  "CMakeFiles/el_core.dir/templates_fp.cc.o"
  "CMakeFiles/el_core.dir/templates_fp.cc.o.d"
  "CMakeFiles/el_core.dir/translator.cc.o"
  "CMakeFiles/el_core.dir/translator.cc.o.d"
  "libel_core.a"
  "libel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/el_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
