/**
 * @file
 * IA-32 machine-code decoder.
 *
 * Decodes raw instruction bytes into ia32::Insn. The translator never
 * sees anything but bytes fetched from guest memory, so everything the
 * paper does (basic-block discovery, SMC detection, re-decoding for hot
 * translation) goes through this decoder.
 */

#ifndef EL_IA32_DECODER_HH
#define EL_IA32_DECODER_HH

#include <cstdint>

#include "ia32/insn.hh"
#include "mem/memory.hh"

namespace el::ia32
{

/** Maximum encoded length the decoder will consume. */
constexpr unsigned max_insn_bytes = 15;

/**
 * Decode a single instruction from a byte buffer.
 *
 * @param buf Bytes starting at the instruction.
 * @param len Available bytes.
 * @param addr Guest virtual address of buf[0] (stored into the Insn and
 *             used to resolve relative branch targets).
 * @param out Decoded instruction.
 * @return true on success; on failure @p out->op is Op::Invalid and
 *         out->len is the number of bytes consumed before the failure
 *         was detected (at least 1).
 */
bool decode(const uint8_t *buf, unsigned len, uint32_t addr, Insn *out);

/**
 * Decode a single instruction by fetching bytes from guest memory.
 * Requires exec permission; a fetch fault yields Op::Invalid with len 0.
 */
bool decode(const mem::Memory &memory, uint32_t addr, Insn *out);

} // namespace el::ia32

#endif // EL_IA32_DECODER_HH
