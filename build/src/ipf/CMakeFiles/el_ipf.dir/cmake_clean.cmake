file(REMOVE_RECURSE
  "CMakeFiles/el_ipf.dir/bundle.cc.o"
  "CMakeFiles/el_ipf.dir/bundle.cc.o.d"
  "CMakeFiles/el_ipf.dir/code_cache.cc.o"
  "CMakeFiles/el_ipf.dir/code_cache.cc.o.d"
  "CMakeFiles/el_ipf.dir/insn.cc.o"
  "CMakeFiles/el_ipf.dir/insn.cc.o.d"
  "CMakeFiles/el_ipf.dir/machine.cc.o"
  "CMakeFiles/el_ipf.dir/machine.cc.o.d"
  "libel_ipf.a"
  "libel_ipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/el_ipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
