/**
 * @file
 * Telemetry snapshotter: a registry of named gauges, counter groups and
 * histograms, periodically exported as newline-delimited JSON.
 *
 * The runtime's health is already counted — in per-subsystem
 * `StatGroup`s, in the profiler's rings, in the persist store — but
 * only as an end-of-run report. The `Registry` unifies those sources
 * behind names and emits one self-contained JSON object per sampling
 * period of the *simulated* clock ("el-metrics" v1, one object per
 * line), the live-health interface a future `el_serve` exposes per
 * hosted guest.
 *
 * Sources are registered as non-owned pointers/closures and read lazily
 * at emit time, so registration costs nothing on the execution path.
 * Emission is driven from the dispatch loop (`maybeEmit`) off simulated
 * cycles and charges zero simulated cycles itself: cycle results are
 * bit-identical with snapshotting on or off.
 */

#ifndef EL_SUPPORT_METRICS_HH
#define EL_SUPPORT_METRICS_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "support/buildinfo.hh"
#include "support/stats.hh"

namespace el::metrics
{

/** The registry. One per run; see file comment. */
class Registry
{
  public:
    Registry() = default;
    ~Registry() { closeOutput(); }

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Register a point-in-time value read at each emit. */
    void
    gauge(const std::string &name, std::function<double()> read)
    {
        gauges_.push_back({name, std::move(read)});
    }

    /** Register a counter group; exported as "<prefix>.<counter>". */
    void
    counters(const std::string &prefix, const StatGroup *group)
    {
        counter_groups_.push_back({prefix, group});
    }

    /** Register a histogram; exported as count/mean/p50/p90/p99. */
    void
    histogram(const std::string &name, const Histogram *h)
    {
        histograms_.push_back({name, h});
    }

    /** Simulated cycles between snapshots (0 disables maybeEmit). */
    void setPeriod(uint64_t cycles) { period_ = cycles; }
    uint64_t period() const { return period_; }

    /** Stamp every snapshot line with a build/schema provenance
     *  header. Optional: embedders without one emit unstamped lines. */
    void
    setProducer(const buildinfo::ProducerStamp &stamp)
    {
        producer_ = stamp;
        have_producer_ = true;
    }

    /** Open @p path for NDJSON output; false on I/O failure. */
    bool openOutput(const std::string &path);
    void closeOutput();

    /**
     * Emit one snapshot line if the simulated clock crossed the next
     * period boundary since the last emit. Call sites pass the current
     * cycle count at dispatch boundaries; never charges cycles.
     */
    void
    maybeEmit(double cycle)
    {
        if (!period_ || !out_ || cycle < next_emit_)
            return;
        emit(cycle);
        while (next_emit_ <= cycle)
            next_emit_ += static_cast<double>(period_);
    }

    /** Emit one snapshot line unconditionally (if output is open). */
    void emit(double cycle);

    /** One "el-metrics" v1 object (no trailing newline). */
    std::string snapshotJson(double cycle) const;

    /** Snapshot lines emitted so far. */
    uint64_t snapshots() const { return snapshots_; }

  private:
    struct Gauge
    {
        std::string name;
        std::function<double()> read;
    };
    struct CounterGroup
    {
        std::string prefix;
        const StatGroup *group;
    };
    struct Hist
    {
        std::string name;
        const Histogram *h;
    };

    std::vector<Gauge> gauges_;
    std::vector<CounterGroup> counter_groups_;
    std::vector<Hist> histograms_;
    buildinfo::ProducerStamp producer_;
    bool have_producer_ = false;
    uint64_t period_ = 0;
    double next_emit_ = 0;
    uint64_t snapshots_ = 0;
    std::FILE *out_ = nullptr;
};

} // namespace el::metrics

#endif // EL_SUPPORT_METRICS_HH
