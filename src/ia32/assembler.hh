/**
 * @file
 * IA-32 machine-code assembler.
 *
 * The workload suite (guest/workloads.hh) uses this builder to emit real
 * x86 machine code into guest images, so the decoder, the interpreter and
 * the translator all consume genuine bytes. Labels support forward
 * references; branches to labels are encoded with rel32 displacements.
 *
 * The assembler emits exactly the encodings the decoder supports; a
 * round-trip property test (tests/ia32_roundtrip.cc) enforces this.
 */

#ifndef EL_IA32_ASSEMBLER_HH
#define EL_IA32_ASSEMBLER_HH

#include <cstdint>
#include <vector>

#include "ia32/insn.hh"
#include "ia32/regs.hh"

namespace el::ia32
{

/** Build a [base + disp] memory reference. */
inline MemRef
memb(Reg base, int32_t disp = 0)
{
    MemRef m;
    m.has_base = true;
    m.base = base;
    m.disp = disp;
    return m;
}

/** Build a [base + index*scale + disp] memory reference. */
inline MemRef
membi(Reg base, Reg index, uint8_t scale, int32_t disp = 0)
{
    MemRef m;
    m.has_base = true;
    m.base = base;
    m.has_index = true;
    m.index = index;
    m.scale = scale;
    m.disp = disp;
    return m;
}

/** Build an [index*scale + disp] memory reference (no base). */
inline MemRef
memi(Reg index, uint8_t scale, int32_t disp = 0)
{
    MemRef m;
    m.has_index = true;
    m.index = index;
    m.scale = scale;
    m.disp = disp;
    return m;
}

/** Build an absolute [disp] memory reference. */
inline MemRef
memabs(uint32_t addr)
{
    MemRef m;
    m.disp = static_cast<int32_t>(addr);
    return m;
}

/** A branch-target label; create with Assembler::label(). */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/** Emits IA-32 machine code with forward-referencing labels. */
class Assembler
{
  public:
    /** @param base Guest virtual address the code will be loaded at. */
    explicit Assembler(uint32_t base) : base_(base) {}

    /** Current emission address. */
    uint32_t pc() const { return base_ + static_cast<uint32_t>(buf_.size()); }

    uint32_t base() const { return base_; }

    /** Create an unbound label. */
    Label label();

    /** Bind @p l to the current position. */
    void bind(Label l);

    /** Finish assembly: patch all label fixups and return the bytes. */
    std::vector<uint8_t> finish();

    // ----- data movement ---------------------------------------------
    void movRI(Reg r, uint32_t imm);
    void movRR(Reg d, Reg s);
    void movRM(Reg d, const MemRef &m);
    void movMR(const MemRef &m, Reg s);
    void movMI(const MemRef &m, uint32_t imm);
    void movRI8(Reg8 r, uint8_t imm);
    void movRM8(Reg8 d, const MemRef &m);
    void movMR8(const MemRef &m, Reg8 s);
    void movMI8(const MemRef &m, uint8_t imm);
    void movRM16(Reg d, const MemRef &m);
    void movMR16(const MemRef &m, Reg s);
    void movzxRM8(Reg d, const MemRef &m);
    void movzxRR8(Reg d, Reg8 s);
    void movzxRM16(Reg d, const MemRef &m);
    void movsxRM8(Reg d, const MemRef &m);
    void movsxRM16(Reg d, const MemRef &m);
    void lea(Reg d, const MemRef &m);
    void xchgRR(Reg a, Reg b);
    void pushR(Reg r);
    void pushI(int32_t imm);
    void pushM(const MemRef &m);
    void popR(Reg r);
    void cdq();
    void sahf();
    void lahf();
    void leave();

    // ----- integer ALU ------------------------------------------------
    /** Generic two-operand ALU: op in {Add,Adc,Sub,Sbb,And,Or,Xor,Cmp}. */
    void aluRR(Op op, Reg d, Reg s);
    void aluRI(Op op, Reg d, int32_t imm);
    void aluRM(Op op, Reg d, const MemRef &m);
    void aluMR(Op op, const MemRef &m, Reg s);
    void aluMI(Op op, const MemRef &m, int32_t imm);
    void aluRR8(Op op, Reg8 d, Reg8 s);
    void aluRI8(Op op, Reg8 d, uint8_t imm);
    void testRR(Reg a, Reg b);
    void testRI(Reg a, uint32_t imm);
    void incR(Reg r);
    void decR(Reg r);
    void incM(const MemRef &m);
    void decM(const MemRef &m);
    void negR(Reg r);
    void notR(Reg r);
    void imulRR(Reg d, Reg s);
    void imulRM(Reg d, const MemRef &m);
    void mulR(Reg s);
    void imul1R(Reg s);
    void divR(Reg s);
    void idivR(Reg s);
    void shiftRI(Op op, Reg r, uint8_t imm);
    void shiftRCl(Op op, Reg r);

    // ----- control flow -------------------------------------------------
    void jcc(Cond cond, Label target);
    void jmp(Label target);
    void jmpAbs(uint32_t target);
    void jmpR(Reg r);
    void jmpM(const MemRef &m);
    void call(Label target);
    void callAbs(uint32_t target);
    void callR(Reg r);
    void ret(uint16_t pop_bytes = 0);
    void setcc(Cond cond, Reg8 r);
    void cmovcc(Cond cond, Reg d, Reg s);

    // ----- strings -------------------------------------------------------
    void repMovsd();
    void repStosd();
    void repMovsb();
    void repStosb();
    void movsd_str();
    void stosd_str();
    void cld();

    // ----- system --------------------------------------------------------
    void intN(uint8_t vector);
    void int3();
    void nop();
    void hlt();
    void ud2();

    // ----- x87 -------------------------------------------------------------
    void fldM32(const MemRef &m);
    void fldM64(const MemRef &m);
    void fldSt(uint8_t i);
    void fildM32(const MemRef &m);
    void fstM32(const MemRef &m, bool pop);
    void fstM64(const MemRef &m, bool pop);
    void fstSt(uint8_t i, bool pop);
    void fistpM32(const MemRef &m);
    void fld1();
    void fldz();
    /** op in {Fadd,Fmul,Fsub,Fsubr,Fdiv,Fdivr} applied to ST(0), m32. */
    void farithM32(Op op, const MemRef &m);
    void farithM64(Op op, const MemRef &m);
    /** ST(0) = ST(0) op ST(i). */
    void farithSt0Sti(Op op, uint8_t i);
    /** ST(i) = ST(i) op ST(0); @p pop selects the P form. */
    void farithStiSt0(Op op, uint8_t i, bool pop);
    void fxch(uint8_t i);
    void fchs();
    void fabs_();
    void fsqrt();
    void fcomi(uint8_t i, bool pop);
    void fnstswAx();
    void fninit();

    // ----- MMX -------------------------------------------------------------
    void movdMmR(uint8_t mm, Reg r);
    void movdRMm(Reg r, uint8_t mm);
    void movqMmM(uint8_t mm, const MemRef &m);
    void movqMMm(const MemRef &m, uint8_t mm);
    void movqMmMm(uint8_t d, uint8_t s);
    /** op in {Paddb..Psubd, Pand, Por, Pxor, Pmullw}; mm, mm form. */
    void pArithMmMm(Op op, uint8_t d, uint8_t s);
    void pArithMmM(Op op, uint8_t d, const MemRef &m);
    void emms();

    // ----- SSE ---------------------------------------------------------------
    void movapsXM(uint8_t x, const MemRef &m);
    void movapsMX(const MemRef &m, uint8_t x);
    void movapsXX(uint8_t d, uint8_t s);
    void movupsXM(uint8_t x, const MemRef &m);
    void movupsMX(const MemRef &m, uint8_t x);
    void movssXM(uint8_t x, const MemRef &m);
    void movssMX(const MemRef &m, uint8_t x);
    void movsdXM(uint8_t x, const MemRef &m);
    void movsdMX(const MemRef &m, uint8_t x);
    void movdqaXM(uint8_t x, const MemRef &m);
    void movdqaMX(const MemRef &m, uint8_t x);
    /** op is one of the SSE arithmetic Ops (Addps, Mulss, ...). */
    void sseArithXX(Op op, uint8_t d, uint8_t s);
    void sseArithXM(Op op, uint8_t d, const MemRef &m);
    void ucomissXX(uint8_t a, uint8_t b);
    void cvtps2pd(uint8_t d, uint8_t s);
    void cvtpd2ps(uint8_t d, uint8_t s);
    void cvtsi2ss(uint8_t d, Reg s);
    void cvttss2si(Reg d, uint8_t s);

    // ----- raw ------------------------------------------------------------
    void byte(uint8_t b) { buf_.push_back(b); }
    void bytes(std::initializer_list<uint8_t> bs);

  private:
    struct Fixup
    {
        size_t offset; //!< Location of the rel32 field in buf_.
        int label;
    };

    void emit8(uint8_t v) { buf_.push_back(v); }
    void emit16(uint16_t v);
    void emit32(uint32_t v);
    void emitModRm(unsigned reg, const MemRef &m);
    void emitModRmReg(unsigned reg, unsigned rm);
    /** Emit either reg-form or mem-form ModRM for a unified operand. */
    void emitRel32To(Label target);
    uint8_t aluIdx(Op op) const;
    uint8_t shiftIdx(Op op) const;

    uint32_t base_;
    std::vector<uint8_t> buf_;
    std::vector<int64_t> label_pos_; //!< -1 while unbound.
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace el::ia32

#endif // EL_IA32_ASSEMBLER_HH
