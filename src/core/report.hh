/**
 * @file
 * Machine-readable run reports: cycle attribution in the paper's
 * Figure 6 categories, per-block cycle rows, and the full counter set,
 * serialized as JSON.
 *
 * The attribution buckets the machine's per-bucket cycle totals into
 * the categories Figure 6 plots — time in cold code, time in hot code,
 * time in BTGeneric (the runtime), and fault + misalignment handling —
 * plus the native/idle time Figures 7 and 8 need. Every simulated cycle
 * lands in exactly one category, and all cycle values are
 * integer-valued doubles, so the categories sum to the machine's total
 * cycle count *exactly* (bit-identical, not approximately).
 */

#ifndef EL_CORE_REPORT_HH
#define EL_CORE_REPORT_HH

#include <cstdint>
#include <string>

#include "support/buildinfo.hh"

namespace el::prof
{
class Profiler;
} // namespace el::prof

namespace el::ia32
{
struct State;
} // namespace el::ia32

namespace el::core
{

class Runtime;

/**
 * The architectural outcome of one guest run, reduced to comparable
 * scalars: a warm-start run must reproduce these bit-for-bit against a
 * cold run, and CI diffs them across cache states. Hashes are rendered
 * as hex strings in the JSON (64-bit values do not survive a round
 * trip through JSON doubles).
 */
struct GuestResult
{
    bool exited = false;
    int32_t exit_code = 0;
    uint64_t state_hash = 0;   //!< Hash of the final ia32::State.
    uint64_t console_hash = 0; //!< Hash of the guest console output.
    uint64_t guest_insns = 0;
};

/** Reduce a final guest state + console to a GuestResult. */
GuestResult guestResultOf(const ia32::State &state,
                          const std::string &console, bool exited,
                          int32_t exit_code, uint64_t guest_insns);

/** Simulated cycles bucketed into the paper's Figure 6 categories. */
struct Attribution
{
    double cold_code = 0;      //!< Executing cold translations.
    double hot_code = 0;       //!< Executing hot traces.
    double btgeneric = 0;      //!< BTGeneric: translation + dispatch.
    double fault_handling = 0; //!< Misalignment penalties + guard repair.
    double native = 0;         //!< Kernel/native time (Figure 7).
    double idle = 0;           //!< Idle time (Figure 7).

    /** Exact sum of the categories (== Machine::totalCycles()). */
    double
    total() const
    {
        return cold_code + hot_code + btgeneric + fault_handling +
               native + idle;
    }
};

/** Compute the attribution for a finished (or paused) runtime. */
Attribution attributionOf(Runtime &rt);

/**
 * The full run report as a JSON object string: workload name, totals,
 * the attribution, every translator/runtime counter, and — when
 * Options::collect_block_cycles was set — one row per translation
 * block with its simulated cycles and retired instructions.
 */
std::string runReportJson(Runtime &rt, const std::string &workload,
                          const GuestResult *guest = nullptr,
                          const buildinfo::ProducerStamp *producer =
                              nullptr);

/** Write runReportJson() to @p path; false on I/O failure. */
bool writeRunReport(Runtime &rt, const std::string &workload,
                    const std::string &path,
                    const GuestResult *guest = nullptr,
                    const buildinfo::ProducerStamp *producer = nullptr);

/**
 * The execution profile as a JSON object string (`el_prof` renders it):
 * per-block execution counts with IA-32 disassembly and — when
 * Options::collect_block_cycles was set — the joined per-translation
 * IPF cycle/instruction costs, per-site conditional edge counters,
 * per-site indirect-target distributions, the sampled time series, and
 * the profiler's own health counters.
 */
std::string profileJson(Runtime &rt, const prof::Profiler &prof,
                        const std::string &workload,
                        const buildinfo::ProducerStamp *producer =
                            nullptr);

/** Write profileJson() to @p path; false on I/O failure. */
bool writeProfile(Runtime &rt, const prof::Profiler &prof,
                  const std::string &workload, const std::string &path,
                  const buildinfo::ProducerStamp *producer = nullptr);

} // namespace el::core

#endif // EL_CORE_REPORT_HH
