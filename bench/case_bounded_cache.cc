/**
 * @file
 * Case study: cost of graceful degradation under a bounded code cache.
 *
 * The seed's unbounded cache is the happy path; production translators
 * run with a cap and a flush-and-retranslate GC. This bench sweeps the
 * capacity downward on an integer kernel and reports the slowdown, the
 * number of flush generations taken and the retranslation volume — the
 * knee of the curve shows how much cache the workload actually needs
 * before recovery overhead (Options::cache_flush_cost + retranslation)
 * starts to dominate.
 */

#include "bench/bench_common.hh"

using namespace el;

namespace
{

struct Run
{
    double cycles = 0;
    uint64_t flushes = 0;
    uint64_t cold_blocks = 0;
    size_t high_water = 0;
};

Run
runWith(const guest::Workload &w, core::Options o, bench::Report &rep,
        const std::string &label)
{
    harness::TranslatedRun tr =
        harness::runTranslated(w.image, w.params.abi, o);
    Run r;
    r.cycles = tr.outcome.cycles;
    r.flushes = tr.runtime->translator().stats.get("recover.cache_flush");
    r.cold_blocks =
        tr.runtime->translator().stats.get("xlate.cold_blocks");
    r.high_water = tr.runtime->codeCache().highWater();
    rep.row(label)
        .metric("cycles", r.cycles)
        .metric("flushes", static_cast<double>(r.flushes))
        .metric("cold_xlates", static_cast<double>(r.cold_blocks))
        .metric("high_water", static_cast<double>(r.high_water))
        .attribution(*tr.runtime);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Bounded code cache: flush-and-retranslate cost",
                  "the robustness spine (no paper figure)");

    // Large flat code footprint: the cache-pressure worst case.
    guest::WorkloadParams ip;
    ip.outer_iters = 12;
    ip.size = 4000;
    ip.code_copies = 12;
    guest::Workload intw = guest::buildBigCode("bigcode", ip);

    core::Options base;
    base.heat_threshold = 16;
    base.hot_batch = 1;
    bench::Report rep("case_bounded_cache");
    Run unbounded = runWith(intw, base, rep, "unbounded");

    Table t({"capacity", "slowdown", "flushes", "cold xlates",
             "high water"});
    t.addRow({"unbounded", "1.00x", "0",
              strfmt("%llu",
                     static_cast<unsigned long long>(
                         unbounded.cold_blocks)),
              strfmt("%zu", unbounded.high_water)});

    for (size_t cap : {8192u, 4096u, 2048u, 1024u}) {
        core::Options o = base;
        o.code_cache_capacity = cap;
        o.cache_headroom = cap >= 2048 ? 768 : 512;
        Run r = runWith(intw, o, rep, strfmt("cap_%zu", cap));
        rep.scalar(strfmt("slowdown_cap_%zu", cap),
                   r.cycles / unbounded.cycles, 0.20);
        t.addRow({strfmt("%zu", cap),
                  strfmt("%.2fx", r.cycles / unbounded.cycles),
                  strfmt("%llu",
                         static_cast<unsigned long long>(r.flushes)),
                  strfmt("%llu",
                         static_cast<unsigned long long>(r.cold_blocks)),
                  strfmt("%zu", r.high_water)});
    }
    rep.write();
    std::printf("%s\n", t.render().c_str());
    std::printf("Interpretation: the cache never exceeds its cap (high\n"
                "water <= capacity); shrinking the cap trades cycles for\n"
                "memory through extra flush generations and\n"
                "retranslation.\n");
    return 0;
}
