/**
 * @file
 * `el_aot`: offline pre-translation into a sealed artifact store.
 *
 * The endpoint of the persistence subsystem: translate a whole guest
 * image ahead of time, so `el_run --cache-dir=<d>` starts warm with
 * zero hot-translation cost. The tool runs three passes:
 *
 *  1. Oracle: the image under the reference interpreter — the ground
 *     truth every artifact is judged against.
 *  2. Discovery: a translated run with an aggressive heat threshold
 *     and an attached store, so every trace worth keeping is built and
 *     recorded.
 *  3. Validation: a fresh translated run that adopts every recorded
 *     artifact with the divergence sentinel shadow-checking *every*
 *     region against the interpreter. A diverging artifact is
 *     quarantined, which purges its store records — it is never
 *     shipped. The run's final architectural outcome is then compared
 *     against the oracle; any mismatch aborts without writing a store.
 *
 * Only after both gates pass is the store sealed (frozen against
 * further recording) and saved.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/report.hh"
#include "guest/workloads.hh"
#include "harness/exec.hh"
#include "persist/store.hh"
#include "support/logging.hh"
#include "support/sentinel.hh"

namespace
{

using namespace el;

constexpr int exit_ok = 0;
constexpr int exit_usage = 1;
constexpr int exit_io = 2;
constexpr int exit_divergence = 30;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: el_aot --workload=<name> --cache-dir=<dir> [options]\n"
        "  --workload=<name>      personality to pre-translate\n"
        "  --cache-dir=<dir>      store directory to write\n"
        "  --list                 list known workloads and exit\n"
        "  --heat-threshold=<n>   discovery aggressiveness (default 4:\n"
        "                         nearly everything heats)\n"
        "  --threads=<n>          discovery worker threads (default 0)\n"
        "  --fault=<site>:<p>     inject faults into the DISCOVERY run\n"
        "                         (validation always runs clean; used\n"
        "                         to prove miscompiled artifacts are\n"
        "                         rejected, see CI)\n"
        "  --fault-seed=<n>       fault-injection PRNG seed\n"
        "  --log-level=<l>        err|warn|info|debug (EL_LOG env\n"
        "                         var is the fallback)\n");
}

std::vector<guest::Workload>
allWorkloads()
{
    std::vector<guest::Workload> all = guest::specIntSuite();
    for (auto &w : guest::specFpSuite())
        all.push_back(std::move(w));
    for (auto &w : guest::sysmarkSuite())
        all.push_back(std::move(w));
    for (auto &w : guest::adversarialSuite())
        all.push_back(std::move(w));
    return all;
}

bool
parseFaultSite(const std::string &name, FaultSite *out)
{
    for (size_t s = 0; s < num_fault_sites; ++s) {
        FaultSite site = static_cast<FaultSite>(s);
        if (name == faultSiteName(site)) {
            *out = site;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name, cache_dir;
    uint32_t heat_threshold = 4;
    uint32_t threads = 0;
    FaultConfig fault;
    bool list = false;

    initLogLevelFromEnv(); // Explicit --log-level below overrides.

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            if (arg.compare(0, n, prefix) != 0 || arg.size() == n)
                return nullptr;
            return arg.c_str() + n;
        };
        if (const char *v = value("--workload=")) {
            workload_name = v;
        } else if (const char *v = value("--cache-dir=")) {
            cache_dir = v;
        } else if (arg == "--list") {
            list = true;
        } else if (const char *v = value("--heat-threshold=")) {
            heat_threshold = static_cast<uint32_t>(std::atoi(v));
        } else if (const char *v = value("--threads=")) {
            threads = static_cast<uint32_t>(std::atoi(v));
        } else if (const char *v = value("--fault=")) {
            std::string spec = v;
            size_t colon = spec.rfind(':');
            FaultSite site;
            if (colon == std::string::npos ||
                !parseFaultSite(spec.substr(0, colon), &site)) {
                std::fprintf(stderr, "el_aot: bad --fault spec '%s'\n",
                             v);
                return exit_usage;
            }
            fault.site(site,
                       static_cast<uint16_t>(
                           std::atoi(spec.c_str() + colon + 1)));
        } else if (const char *v = value("--fault-seed=")) {
            fault.seed = static_cast<uint64_t>(std::atoll(v));
        } else if (const char *v = value("--log-level=")) {
            int level = parseLogLevel(v);
            if (level < 0) {
                std::fprintf(stderr,
                             "el_aot: bad --log-level '%s' (want "
                             "err|warn|info|debug)\n", v);
                return exit_usage;
            }
            log_level = level;
        } else if (arg == "--help") {
            usage();
            return exit_ok;
        } else {
            std::fprintf(stderr, "el_aot: unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return exit_usage;
        }
    }

    std::vector<guest::Workload> suite = allWorkloads();
    if (list) {
        for (const guest::Workload &w : suite)
            std::printf("%s\n", w.name.c_str());
        return exit_ok;
    }
    if (workload_name.empty() || cache_dir.empty()) {
        usage();
        return exit_usage;
    }

    const guest::Workload *wl = nullptr;
    for (const guest::Workload &w : suite)
        if (w.name == workload_name)
            wl = &w;
    if (!wl) {
        std::fprintf(stderr, "el_aot: unknown workload '%s'\n",
                     workload_name.c_str());
        return exit_usage;
    }

    // Pass 1: the oracle.
    harness::Outcome oracle =
        harness::runInterpreter(wl->image, wl->params.abi);
    core::GuestResult oracle_res = core::guestResultOf(
        oracle.final_state, oracle.console, oracle.exited,
        oracle.exit_code, oracle.guest_insns);
    std::printf("el_aot: oracle: exit=%d insns=%llu state=%016llx\n",
                oracle.exit_code,
                static_cast<unsigned long long>(oracle.guest_insns),
                static_cast<unsigned long long>(oracle_res.state_hash));

    // The fingerprint hashes only emission-relevant options, which are
    // identical between the discovery pass, the validation pass, and a
    // later default el_run — that is what makes the store portable
    // across thresholds.
    core::Options base;
    persist::ArtifactStore store(
        persist::fingerprintOf(wl->image, base));

    // Pass 2: discovery (aggressive heating, store recording).
    {
        core::Options o;
        o.heat_threshold = heat_threshold;
        o.hot_batch = 1;
        o.translation_threads = threads;
        o.deterministic_adoption = threads > 0;
        o.fault = fault;
        o.persist = &store;
        harness::TranslatedRun run =
            harness::runTranslated(wl->image, wl->params.abi, o);
        std::printf("el_aot: discovery: %zu artifacts recorded "
                    "(%llu hot blocks)\n",
                    store.recordCount(),
                    static_cast<unsigned long long>(
                        run.runtime->translator().stats.get(
                            "xlate.hot_blocks")));
    }

    // Pass 3: validation — adopt everything, shadow-check everything.
    uint64_t divergences = 0;
    {
        core::Options o;
        o.heat_threshold = heat_threshold;
        o.hot_batch = 1;
        o.persist = &store;
        // Quarantined regions fall back to gated interpretation, which
        // is an order of magnitude dearer in simulated cycles; give the
        // validation run budget to finish anyway — a convicted artifact
        // must still yield a completed, oracle-matching run.
        o.max_run_cycles = 10 * o.max_run_cycles;
        sentinel::Config scfg;
        scfg.selfcheck_rate = 1;
        sentinel::Sentinel sentinel(scfg);
        o.sentinel = &sentinel;
        harness::TranslatedRun run =
            harness::runTranslated(wl->image, wl->params.abi, o);
        divergences = sentinel.totalDivergences();

        core::GuestResult v = core::guestResultOf(
            run.outcome.final_state, run.outcome.console,
            run.outcome.exited, run.outcome.exit_code,
            run.outcome.guest_insns);
        // guest_insns is excluded: the interpreter counts retired
        // instructions, translated runs count translated-source ones.
        bool match = v.exited == oracle_res.exited &&
                     v.exit_code == oracle_res.exit_code &&
                     v.state_hash == oracle_res.state_hash &&
                     v.console_hash == oracle_res.console_hash;
        std::printf("el_aot: validation: checked=%llu divergences=%llu "
                    "dropped=%llu outcome=%s\n",
                    static_cast<unsigned long long>(
                        run.runtime->stats().get("sentinel.checked")),
                    static_cast<unsigned long long>(divergences),
                    static_cast<unsigned long long>(
                        store.stats.get("persist.dropped")),
                    match ? "matches oracle" : "MISMATCH");
        if (!match) {
            std::fprintf(stderr,
                         "el_aot: validated run diverges from the "
                         "interpreter oracle; no store written\n");
            return exit_divergence;
        }
    }

    store.seal();
    // save() publishes via temp+fsync+rename, so a killed el_aot never
    // ships a partial sealed store: either the old file survives or
    // the new one is complete.
    if (!store.save(cache_dir)) {
        std::fprintf(stderr, "el_aot: cannot write store in %s\n",
                     cache_dir.c_str());
        return exit_io;
    }
    // Sealed stores never journal; drop any journal a crashed el_run
    // left beside the store so loaders need not consider it.
    std::error_code ec;
    std::filesystem::remove(store.journalPathIn(cache_dir), ec);
    std::printf("el_aot: sealed %zu validated artifacts (%llu rejected) "
                "-> %s (%lluB)\n",
                store.recordCount(),
                static_cast<unsigned long long>(
                    store.stats.get("persist.dropped")),
                store.pathIn(cache_dir).c_str(),
                static_cast<unsigned long long>(
                    store.stats.get("persist.bytes_written")));
    return exit_ok;
}
