# Empty compiler generated dependencies file for misalignment_clinic.
# This may be replaced when dependencies are built.
