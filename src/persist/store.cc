#include "persist/store.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "core/options.hh"
#include "guest/image.hh"
#include "persist/durable.hh"
#include "support/faultinject.hh"
#include "support/strfmt.hh"
#include "support/wire.hh"

namespace el::persist
{

namespace
{

// ----- hashing ------------------------------------------------------

constexpr uint64_t fnv_offset = 0xcbf29ce484222325ULL;
constexpr uint64_t fnv_prime = 0x100000001b3ULL;

void
fnv(uint64_t &h, const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnv_prime;
    }
}

void
fnvU64(uint64_t &h, uint64_t v)
{
    fnv(h, &v, sizeof(v));
}

// ----- byte-oriented encoding ---------------------------------------

using Writer = wire::Writer;
using Reader = wire::Reader;
using wire::crc32;

constexpr uint32_t file_magic = 0x53504c45u;   // "ELPS"
constexpr uint32_t record_magic = 0x52544f48u; // "HOTR"
constexpr uint32_t flag_sealed = 1u << 0;

// The hot-artifact journal: an append-only sidecar of this run's
// record()/dropAt() mutations, flushed at adoption boundaries and
// folded into the .elstore by compact(). Header (28 bytes) mirrors
// the store's fingerprint gate; each frame is
//   u32 jrec_magic | u8 kind | u32 len | u32 crc | payload[len]
// where kind 0 carries an encodeRecord() payload and kind 1 a u32
// entry EIP to drop. There is no frame count: the journal's tail is
// wherever the bytes stop, and a torn final frame is expected after a
// crash (exactly one persist.rejected_truncated, scan stops there).
constexpr uint32_t journal_magic = 0x4a504c45u; // "ELPJ"
constexpr uint32_t jrec_magic = 0x4345524au;    // "JREC"
constexpr uint8_t jkind_add = 0;
constexpr uint8_t jkind_drop = 1;
constexpr size_t jframe_header_bytes = 4 + 1 + 4 + 4;

// Sanity caps: far above anything the emitter produces, low enough
// that a corrupt length can never drive a multi-gigabyte allocation.
constexpr uint32_t max_code = 1u << 20;
constexpr uint32_t max_recovery = 1u << 20;
constexpr uint32_t max_stubs = 1u << 16;
constexpr uint32_t max_covered = 1u << 16;
constexpr uint32_t max_guards = 1u << 16;
constexpr size_t max_record_bytes = 256u << 20;

void
putLoc(Writer &w, const core::Loc &l)
{
    w.u8(static_cast<uint8_t>(l.kind));
    w.i16(l.reg);
}

bool
getLoc(Reader &r, core::Loc &l)
{
    uint8_t k = r.u8();
    l.reg = r.i16();
    if (k > static_cast<uint8_t>(core::Loc::Kind::Gr))
        return false;
    l.kind = static_cast<core::Loc::Kind>(k);
    return r.ok;
}

void
putInstr(Writer &w, const ipf::Instr &i)
{
    w.u16(static_cast<uint16_t>(i.op));
    w.u8(i.qp);
    w.u8(i.dst);
    w.u8(i.dst2);
    w.u8(i.src1);
    w.u8(i.src2);
    w.u8(i.src3);
    w.i64(i.imm);
    w.u8(i.size);
    w.u8(i.pos);
    w.u8(i.len);
    w.u8(static_cast<uint8_t>(i.crel));
    w.u8(static_cast<uint8_t>(i.prec));
    w.u8(static_cast<uint8_t>(i.spec));
    w.b(i.stop);
    w.i64(i.target);
    w.u8(static_cast<uint8_t>(i.exit_reason));
    w.i64(i.exit_payload);
    w.u8(static_cast<uint8_t>(i.meta.bucket));
    w.u32(i.meta.ia32_ip);
    w.i32(i.meta.commit_id);
}

bool
getInstr(Reader &r, ipf::Instr &i, uint32_t code_count,
         uint32_t recovery_count)
{
    uint16_t op = r.u16();
    i.qp = r.u8();
    i.dst = r.u8();
    i.dst2 = r.u8();
    i.src1 = r.u8();
    i.src2 = r.u8();
    i.src3 = r.u8();
    i.imm = r.i64();
    i.size = r.u8();
    i.pos = r.u8();
    i.len = r.u8();
    uint8_t crel = r.u8();
    uint8_t prec = r.u8();
    uint8_t spec = r.u8();
    i.stop = r.b();
    i.target = r.i64();
    uint8_t exit_reason = r.u8();
    i.exit_payload = r.i64();
    uint8_t bucket = r.u8();
    i.meta.ia32_ip = r.u32();
    i.meta.commit_id = r.i32();
    i.meta.block_id = -1; // Stamped by CodeCache::publish.
    if (!r.ok)
        return false;
    // Semantic validation: a record passing CRC can still be garbage
    // (or maliciously crafted); never let an out-of-range enum or a
    // wild staging-relative branch into the shared cache.
    if (op == 0 || op >= static_cast<uint16_t>(ipf::IpfOp::NumOps))
        return false;
    if (crel > static_cast<uint8_t>(ipf::CmpRel::Unord) ||
        prec > static_cast<uint8_t>(ipf::FpPrec::Extended) ||
        spec > static_cast<uint8_t>(ipf::Spec::S) ||
        exit_reason > static_cast<uint8_t>(ipf::ExitReason::GuestFault) ||
        bucket >= static_cast<uint8_t>(ipf::Bucket::NumBuckets))
        return false;
    if (i.target < -1 || i.target >= static_cast<int64_t>(code_count))
        return false;
    if (i.meta.commit_id < -1 ||
        i.meta.commit_id >= static_cast<int32_t>(recovery_count))
        return false;
    i.op = static_cast<ipf::IpfOp>(op);
    i.crel = static_cast<ipf::CmpRel>(crel);
    i.prec = static_cast<ipf::FpPrec>(prec);
    i.spec = static_cast<ipf::Spec>(spec);
    i.exit_reason = static_cast<ipf::ExitReason>(exit_reason);
    i.meta.bucket = static_cast<ipf::Bucket>(bucket);
    return true;
}

void
encodeRecord(Writer &w, const HotRecord &rec)
{
    const core::BlockInfo &p = rec.proto;

    w.u32(rec.entry_eip);
    w.u8(rec.spec_tos);
    w.u8(rec.spec_tag);
    w.u8(rec.spec_mmx_domain);
    w.u32(rec.spec_xmm_format);

    // Proto block metadata (staging-relative indices).
    w.i64(p.cache_entry);
    w.i64(p.cache_end);
    w.u32(p.insn_count);
    w.u32(p.taken_eip);
    w.u32(p.fall_eip);
    w.b(p.ends_cond);
    w.b(p.ends_indirect);
    w.b(p.smc_guarded);

    // Guard expectations.
    w.b(p.guard.checks_fp);
    w.u8(p.guard.expect_tos);
    w.u8(p.guard.need_valid);
    w.u8(p.guard.need_empty);
    w.b(p.guard.checks_mmx);
    w.u8(p.guard.expect_domain);
    w.b(p.guard.checks_xmm);
    w.u32(p.guard.xmm_mask);
    w.u32(p.guard.xmm_expect);

    w.u32(static_cast<uint32_t>(p.stubs.size()));
    for (const core::ExitStub &s : p.stubs) {
        w.i64(s.cache_index);
        w.u32(s.target_eip);
    }

    w.u32(static_cast<uint32_t>(p.recovery.size()));
    for (const core::RecoveryMap &m : p.recovery) {
        w.u32(m.guest_ip);
        for (const core::Loc &l : m.gpr)
            putLoc(w, l);
        w.u8(static_cast<uint8_t>(m.flags.op));
        w.u8(m.flags.size);
        w.u32(m.flags.dirty_mask);
        putLoc(w, m.flags.wide);
        putLoc(w, m.flags.a);
        putLoc(w, m.flags.b);
        putLoc(w, m.flags.res);
        w.i8(m.tos_delta);
        w.u8(m.tag_set);
        w.u8(m.tag_clear);
        w.u32(m.xmm_formats);
        w.u8(m.mmx_domain);
    }

    w.u32(static_cast<uint32_t>(rec.covered_eips.size()));
    for (uint32_t eip : rec.covered_eips)
        w.u32(eip);

    w.u32(static_cast<uint32_t>(rec.smc_guards.size()));
    for (const auto &[addr, bytes] : rec.smc_guards) {
        w.u32(addr);
        w.u64(bytes);
    }

    w.u32(static_cast<uint32_t>(rec.code.size()));
    for (const ipf::Instr &i : rec.code)
        putInstr(w, i);
}

bool
decodeRecord(const uint8_t *data, size_t n, HotRecord &rec)
{
    Reader r(data, n);
    core::BlockInfo &p = rec.proto;

    rec.entry_eip = r.u32();
    rec.spec_tos = r.u8();
    rec.spec_tag = r.u8();
    rec.spec_mmx_domain = r.u8();
    rec.spec_xmm_format = r.u32();

    p.kind = core::BlockKind::Hot;
    p.entry_eip = rec.entry_eip;
    p.cache_entry = r.i64();
    p.cache_end = r.i64();
    p.insn_count = r.u32();
    p.taken_eip = r.u32();
    p.fall_eip = r.u32();
    p.ends_cond = r.b();
    p.ends_indirect = r.b();
    p.smc_guarded = r.b();

    p.guard.checks_fp = r.b();
    p.guard.expect_tos = r.u8();
    p.guard.need_valid = r.u8();
    p.guard.need_empty = r.u8();
    p.guard.checks_mmx = r.b();
    p.guard.expect_domain = r.u8();
    p.guard.checks_xmm = r.b();
    p.guard.xmm_mask = r.u32();
    p.guard.xmm_expect = r.u32();

    uint32_t stub_count = r.u32();
    if (!r.ok || stub_count > max_stubs)
        return false;
    p.stubs.resize(stub_count);
    for (core::ExitStub &s : p.stubs) {
        s.cache_index = r.i64();
        s.target_eip = r.u32();
        s.patched = false;
    }

    uint32_t recovery_count = r.u32();
    if (!r.ok || recovery_count > max_recovery)
        return false;
    p.recovery.resize(recovery_count);
    for (core::RecoveryMap &m : p.recovery) {
        m.guest_ip = r.u32();
        for (core::Loc &l : m.gpr)
            if (!getLoc(r, l))
                return false;
        uint8_t lazy = r.u8();
        if (lazy > static_cast<uint8_t>(core::FlagRecipe::LazyOp::Logic))
            return false;
        m.flags.op = static_cast<core::FlagRecipe::LazyOp>(lazy);
        m.flags.size = r.u8();
        m.flags.dirty_mask = r.u32();
        if (!getLoc(r, m.flags.wide) || !getLoc(r, m.flags.a) ||
            !getLoc(r, m.flags.b) || !getLoc(r, m.flags.res))
            return false;
        m.tos_delta = r.i8();
        m.tag_set = r.u8();
        m.tag_clear = r.u8();
        m.xmm_formats = r.u32();
        m.mmx_domain = r.u8();
    }

    uint32_t covered_count = r.u32();
    if (!r.ok || covered_count > max_covered)
        return false;
    rec.covered_eips.resize(covered_count);
    for (uint32_t &eip : rec.covered_eips)
        eip = r.u32();

    uint32_t guard_count = r.u32();
    if (!r.ok || guard_count > max_guards)
        return false;
    rec.smc_guards.resize(guard_count);
    for (auto &[addr, bytes] : rec.smc_guards) {
        addr = r.u32();
        bytes = r.u64();
    }

    uint32_t code_count = r.u32();
    if (!r.ok || code_count > max_code)
        return false;
    rec.code.resize(code_count);
    for (ipf::Instr &i : rec.code)
        if (!getInstr(r, i, code_count, recovery_count))
            return false;

    if (!r.ok || r.off != n)
        return false;

    // Cross-field validation: cache indices must address the staged
    // code, exit stubs must point at instructions inside it.
    if (p.cache_entry < 0 || p.cache_end < p.cache_entry ||
        p.cache_end > static_cast<int64_t>(code_count))
        return false;
    for (const core::ExitStub &s : p.stubs)
        if (s.cache_index < 0 ||
            s.cache_index >= static_cast<int64_t>(code_count))
            return false;

    p.id = -1;
    p.invalidated = false;
    p.loaded_from_store = true;
    return true;
}

} // namespace

std::string
Fingerprint::hex() const
{
    return strfmt("%016llx-%016llx-%08x",
                  static_cast<unsigned long long>(image_hash),
                  static_cast<unsigned long long>(opts_hash),
                  static_cast<unsigned>(entry));
}

Fingerprint
fingerprintOf(const guest::Image &image, const core::Options &o)
{
    Fingerprint fp;
    fp.entry = image.entry;

    uint64_t h = fnv_offset;
    fnvU64(h, image.entry);
    fnvU64(h, image.sections.size());
    for (const guest::Section &s : image.sections) {
        fnv(h, s.name.data(), s.name.size());
        fnvU64(h, s.addr);
        fnvU64(h, s.size);
        fnvU64(h, static_cast<uint64_t>(s.perm));
        fnvU64(h, s.bytes.size());
        fnv(h, s.bytes.data(), s.bytes.size());
    }
    fp.image_hash = h;

    // Only emission-relevant options: toggles and code-shape limits
    // that change the bytes a hot session produces. Heat thresholds,
    // worker counts, simulated costs, and cache capacities change when
    // artifacts are built, never their contents, and are excluded so
    // an el_aot-built store (aggressive thresholds) serves a default
    // el_run.
    uint64_t oh = fnv_offset;
    fnvU64(oh, format_version);
    fnvU64(oh, o.analysis_window);
    fnvU64(oh, o.max_trace_blocks);
    fnvU64(oh, o.max_trace_insns);
    fnvU64(oh, o.unroll_factor);
    fnvU64(oh, o.predication_max_side);
    fnvU64(oh, o.lookup_entries);
    uint64_t toggles = 0;
    for (bool t : {o.enable_hot_phase, o.enable_predication,
                   o.enable_unroll, o.enable_eflags_elim,
                   o.enable_fxch_elim, o.enable_fp_stack_spec,
                   o.enable_mmx_alias_spec, o.enable_sse_format_spec,
                   o.enable_misalign_avoidance, o.enable_load_speculation,
                   o.enable_chaining, o.enable_addr_cse})
        toggles = (toggles << 1) | (t ? 1 : 0);
    fnvU64(oh, toggles);
    fp.opts_hash = oh;
    return fp;
}

void
ArtifactStore::record(HotRecord rec)
{
    if (sealed_) {
        stats.add("persist.record_after_seal");
        return;
    }
    if (journal_fd_ >= 0) {
        Writer body;
        encodeRecord(body, rec);
        journalFrame(jkind_add, body.buf);
    }
    auto &vec = records_[rec.entry_eip];
    for (auto &existing : vec) {
        if (existing->spec_tos == rec.spec_tos &&
            existing->spec_tag == rec.spec_tag &&
            existing->spec_mmx_domain == rec.spec_mmx_domain &&
            existing->spec_xmm_format == rec.spec_xmm_format) {
            *existing = std::move(rec);
            stats.add("persist.records_replaced");
            return;
        }
    }
    vec.push_back(std::make_unique<HotRecord>(std::move(rec)));
    stats.add("persist.records_added");
}

void
ArtifactStore::dropAt(uint32_t eip)
{
    auto it = records_.find(eip);
    if (it == records_.end() || it->second.empty())
        return;
    if (journal_fd_ >= 0) {
        // Convictions must survive a crash too: a quarantined trace
        // journaled earlier this run would otherwise resurrect at the
        // next start's replay.
        Writer body;
        body.u32(eip);
        journalFrame(jkind_drop, body.buf);
    }
    stats.add("persist.dropped", it->second.size());
    records_.erase(it);
}

std::vector<const HotRecord *>
ArtifactStore::recordsAt(uint32_t eip) const
{
    std::vector<const HotRecord *> out;
    auto it = records_.find(eip);
    if (it == records_.end())
        return out;
    out.reserve(it->second.size());
    for (const auto &rec : it->second)
        out.push_back(rec.get());
    return out;
}

size_t
ArtifactStore::recordCount() const
{
    size_t n = 0;
    for (const auto &[eip, vec] : records_)
        n += vec.size();
    return n;
}

std::string
ArtifactStore::pathIn(const std::string &dir) const
{
    return dir + "/" + fp_.hex() + ".elstore";
}

bool
ArtifactStore::load(const std::string &dir)
{
    std::error_code ec;
    std::string path = pathIn(dir);
    bool any = false;
    if (std::filesystem::exists(path, ec))
        any = loadFile(path);
    // Fold in any journal a crashed predecessor left behind. Replay
    // is idempotent (replace-by-(eip, spec)), so a journal that
    // duplicates the store is harmless. Sealed stores never journal;
    // a stray journal beside one is stale and ignored.
    journal_replayed_ = 0;
    std::string jpath = journalPathIn(dir);
    if (!sealed_ && std::filesystem::exists(jpath, ec))
        any = replayJournal(jpath) > 0 || any;
    return any;
}

bool
ArtifactStore::save(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return saveFile(pathIn(dir));
}

bool
ArtifactStore::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::vector<uint8_t> buf{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
    in.close();
    stats.add("persist.bytes_read", buf.size());

    Reader r(buf.data(), buf.size());
    uint32_t magic = r.u32();
    uint32_t version = r.u32();
    uint32_t flags = r.u32();
    uint64_t image_hash = r.u64();
    uint64_t opts_hash = r.u64();
    uint32_t entry = r.u32();
    uint32_t record_count = r.u32();
    if (!r.ok || magic != file_magic || version != format_version) {
        stats.add("persist.rejected_header");
        return false;
    }
    if (image_hash != fp_.image_hash || opts_hash != fp_.opts_hash ||
        entry != fp_.entry) {
        // A different image/configuration: not corruption, just not
        // our store. Treated exactly like an absent file.
        stats.add("persist.rejected_fingerprint");
        return false;
    }

    uint64_t loaded = 0;
    for (uint32_t i = 0; i < record_count; ++i) {
        if (r.remaining() < 12) {
            // The bytes ran out before the header's promised record
            // count — a torn tail, whether the cut landed mid-frame
            // or cleanly on a record boundary. Exactly one tally.
            stats.add("persist.rejected_truncated");
            break;
        }
        uint32_t rmagic = r.u32();
        uint32_t rlen = r.u32();
        uint32_t rcrc = r.u32();
        if (rmagic != record_magic) {
            // A full frame header is present but its magic is wrong:
            // corruption, not truncation. The record stream is
            // unframed beyond this point; there is no way to resync,
            // so stop scanning. Everything loaded so far is
            // individually CRC-verified and stays.
            stats.add("persist.rejected_magic");
            break;
        }
        if (rlen > max_record_bytes || !r.need(rlen)) {
            stats.add("persist.rejected_truncated");
            r.ok = true; // need() latched failure; we are done anyway.
            break;
        }
        const uint8_t *payload = buf.data() + r.off;
        r.off += rlen;
        if (crc32(payload, rlen) != rcrc) {
            stats.add("persist.rejected_crc");
            continue; // Framing is intact; the next record may be fine.
        }
        HotRecord rec;
        if (!decodeRecord(payload, rlen, rec)) {
            stats.add("persist.rejected_invalid");
            continue;
        }
        insertLoaded(std::move(rec));
        ++loaded;
    }
    if (flags & flag_sealed)
        sealed_ = true;
    stats.set("persist.records_loaded", loaded);
    return loaded > 0;
}

void
ArtifactStore::insertLoaded(HotRecord &&rec)
{
    // Same replace-by-(eip, spec) policy as record(), but bypassing
    // the sealed check: loading a sealed store is how its records get
    // in memory in the first place.
    auto &vec = records_[rec.entry_eip];
    for (auto &existing : vec) {
        if (existing->spec_tos == rec.spec_tos &&
            existing->spec_tag == rec.spec_tag &&
            existing->spec_mmx_domain == rec.spec_mmx_domain &&
            existing->spec_xmm_format == rec.spec_xmm_format) {
            *existing = std::move(rec);
            return;
        }
    }
    vec.push_back(std::make_unique<HotRecord>(std::move(rec)));
}

bool
ArtifactStore::saveFile(const std::string &path)
{
    Writer w;
    w.u32(file_magic);
    w.u32(format_version);
    w.u32(sealed_ ? flag_sealed : 0);
    w.u64(fp_.image_hash);
    w.u64(fp_.opts_hash);
    w.u32(fp_.entry);
    w.u32(static_cast<uint32_t>(recordCount()));

    uint64_t saved = 0;
    for (const auto &[eip, vec] : records_) {
        for (const auto &rec : vec) {
            Writer body;
            encodeRecord(body, *rec);
            w.u32(record_magic);
            w.u32(static_cast<uint32_t>(body.buf.size()));
            w.u32(crc32(body.buf.data(), body.buf.size()));
            w.buf.insert(w.buf.end(), body.buf.begin(), body.buf.end());
            ++saved;
        }
    }

    // Chaos hook: flip one byte somewhere past the header, so the
    // hardened loader's CRC/validation path is exercised end to end.
    constexpr size_t header_bytes = 4 + 4 + 4 + 8 + 8 + 4 + 4;
    if (w.buf.size() > header_bytes &&
        faultInjected(FaultSite::StoreCorrupt)) {
        w.buf[header_bytes + (w.buf.size() - header_bytes) / 2] ^= 0x40;
        stats.add("persist.injected_corruption");
    }

    if (!writeFileDurable(path, w.buf.data(), w.buf.size(),
                          FaultSite::CrashStoreRename))
        return false;
    stats.add("persist.bytes_written", w.buf.size());
    stats.set("persist.records_saved", saved);
    return true;
}

// ----- the hot-artifact journal -------------------------------------

std::string
ArtifactStore::journalPathIn(const std::string &dir) const
{
    return dir + "/" + fp_.hex() + ".eljournal";
}

bool
ArtifactStore::openJournal(const std::string &dir)
{
    if (sealed_)
        return false;
    closeJournal();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string path = journalPathIn(dir);
    // Always truncate: the journal only ever holds the current run's
    // frames. A predecessor's journal was folded into the .elstore by
    // compact() before this call; appending to it instead would strand
    // everything after its (possibly torn) tail, since replay stops at
    // the first bad frame.
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    journal_fd_ = fd;
    journal_path_ = path;
    Writer h;
    h.u32(journal_magic);
    h.u32(format_version);
    h.u64(fp_.image_hash);
    h.u64(fp_.opts_hash);
    h.u32(fp_.entry);
    journal_pending_ = std::move(h.buf);
    return flushJournal();
}

void
ArtifactStore::journalFrame(uint8_t kind,
                            const std::vector<uint8_t> &payload)
{
    Writer w;
    w.u32(jrec_magic);
    w.u8(kind);
    w.u32(static_cast<uint32_t>(payload.size()));
    w.u32(crc32(payload.data(), payload.size()));
    journal_pending_.insert(journal_pending_.end(), w.buf.begin(),
                            w.buf.end());
    journal_pending_.insert(journal_pending_.end(), payload.begin(),
                            payload.end());
    stats.add("persist.journal_frames");
}

bool
ArtifactStore::flushJournal()
{
    if (journal_fd_ < 0 || journal_pending_.empty())
        return true;
    size_t n = journal_pending_.size();

    // Injected crash: half the pending bytes land (and are durable —
    // the OS could have written them at any time), then the process
    // dies, leaving a genuinely torn tail for the next start's replay.
    bool crash = faultInjected(FaultSite::CrashJournalAppend);
    size_t write_n = crash ? n / 2 : n;

    size_t done = 0;
    bool ok = true;
    while (done < write_n) {
        ssize_t w = ::write(journal_fd_, journal_pending_.data() + done,
                            write_n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            ok = false;
            break;
        }
        done += static_cast<size_t>(w);
    }
    if (ok)
        ok = ::fsync(journal_fd_) == 0;
    if (crash)
        crashNow(FaultSite::CrashJournalAppend);
    if (!ok)
        return false;
    journal_pending_.clear();
    stats.add("persist.journal_bytes", n);
    stats.add("persist.journal_flushes");
    return true;
}

void
ArtifactStore::closeJournal()
{
    if (journal_fd_ < 0)
        return;
    flushJournal();
    ::close(journal_fd_);
    journal_fd_ = -1;
    journal_path_.clear();
    journal_pending_.clear();
}

bool
ArtifactStore::compact(const std::string &dir)
{
    closeJournal();
    if (!save(dir))
        return false;
    // The store now durably holds everything the journal did; the
    // journal is redundant. Crashing before this unlink is safe —
    // replay over the fresh store is a no-op.
    std::error_code ec;
    std::filesystem::remove(journalPathIn(dir), ec);
    stats.add("persist.compactions");
    return true;
}

size_t
ArtifactStore::replayJournal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;
    std::vector<uint8_t> buf{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
    in.close();
    stats.add("persist.bytes_read", buf.size());

    Reader r(buf.data(), buf.size());
    uint32_t magic = r.u32();
    uint32_t version = r.u32();
    uint64_t image_hash = r.u64();
    uint64_t opts_hash = r.u64();
    uint32_t entry = r.u32();
    if (!r.ok || magic != journal_magic || version != format_version) {
        // Includes the tiny-crash case where even the 28-byte header
        // was torn: the whole journal is ignored, the run starts from
        // whatever the .elstore held.
        stats.add("persist.journal_rejected_header");
        return 0;
    }
    if (image_hash != fp_.image_hash || opts_hash != fp_.opts_hash ||
        entry != fp_.entry) {
        stats.add("persist.journal_rejected_fingerprint");
        return 0;
    }

    size_t applied = 0;
    while (r.remaining() > 0) {
        if (r.remaining() < jframe_header_bytes) {
            // Torn mid-frame-header. (A cut exactly on a frame
            // boundary is indistinguishable from clean EOF — the
            // journal carries no frame count — and loses nothing.)
            stats.add("persist.rejected_truncated");
            break;
        }
        uint32_t fmagic = r.u32();
        uint8_t kind = r.u8();
        uint32_t flen = r.u32();
        uint32_t fcrc = r.u32();
        if (fmagic != jrec_magic) {
            stats.add("persist.rejected_magic");
            break;
        }
        if (flen > max_record_bytes || !r.need(flen)) {
            stats.add("persist.rejected_truncated");
            r.ok = true;
            break;
        }
        const uint8_t *payload = buf.data() + r.off;
        r.off += flen;
        if (crc32(payload, flen) != fcrc) {
            stats.add("persist.rejected_crc");
            continue; // Framing intact; later frames may be fine.
        }
        if (kind == jkind_add) {
            HotRecord rec;
            if (!decodeRecord(payload, flen, rec)) {
                stats.add("persist.rejected_invalid");
                continue;
            }
            insertLoaded(std::move(rec));
            ++applied;
        } else if (kind == jkind_drop && flen == 4) {
            Reader pr(payload, flen);
            records_.erase(pr.u32());
            ++applied;
        } else {
            stats.add("persist.rejected_invalid");
        }
    }
    journal_replayed_ = applied;
    stats.set("persist.journal_replayed", applied);
    return applied;
}

} // namespace el::persist
