/**
 * @file
 * Figure 6: execution-time distribution of translated SPEC CPU2000
 * applications (paper: hot 95%, cold 3%, overhead 1%, other 1%).
 */

#include "bench/bench_common.hh"

using namespace el;

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Execution time distribution, SPEC-like suite",
                  "Figure 6");

    double hot = 0, cold = 0, ovh = 0, other = 0;
    unsigned n = 0;
    Table table({"benchmark", "hot", "cold", "overhead", "other"});
    bench::Report rep("fig6_time_distribution");
    for (guest::Workload &w : guest::specIntSuite()) {
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi);
        bench::Distribution d = bench::distributionOf(*tr.runtime);
        double oth = d.native + d.idle;
        table.addRow({w.name, bench::pct(d.hot), bench::pct(d.cold),
                      bench::pct(d.overhead), bench::pct(oth)});
        rep.row(w.name)
            .metric("cycles", tr.outcome.cycles)
            .metric("hot_frac", d.hot)
            .metric("cold_frac", d.cold)
            .metric("overhead_frac", d.overhead)
            .metric("other_frac", oth)
            .attribution(*tr.runtime);
        hot += d.hot;
        cold += d.cold;
        ovh += d.overhead;
        other += oth;
        ++n;
    }
    table.addRow({"Average", bench::pct(hot / n), bench::pct(cold / n),
                  bench::pct(ovh / n), bench::pct(other / n)});
    table.addRow({"(paper)", "95.0%", "3.0%", "1.0%", "1.0%"});
    rep.scalar("avg_hot_frac", hot / n);
    rep.scalar("avg_cold_frac", cold / n);
    rep.scalar("avg_overhead_frac", ovh / n);
    rep.scalar("avg_other_frac", other / n);
    rep.write();
    std::printf("%s\n", table.render().c_str());
    std::printf("Shape check: hot code should dominate (>90%%) — the\n"
                "paper's \"hot trace selection was accurate\" claim.\n");
    return 0;
}
