file(REMOVE_RECURSE
  "CMakeFiles/test_ipf.dir/ipf_machine_test.cc.o"
  "CMakeFiles/test_ipf.dir/ipf_machine_test.cc.o.d"
  "test_ipf"
  "test_ipf.pdb"
  "test_ipf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
