#include "core/translator.hh"

#include "ia32/decoder.hh"
#include "persist/store.hh"
#include "support/faultinject.hh"
#include "support/flightrec.hh"
#include "support/logging.hh"
#include "support/sentinel.hh"
#include "support/trace.hh"

namespace el::core
{

using ia32::Insn;
using ia32::Op;
using ipf::ExitReason;
using ipf::IpfOp;

Translator::Translator(const Options &opts, mem::Memory &memory,
                       ipf::CodeCache &cache, uint64_t rt_base)
    : options(opts), mem_(memory), cache_(cache), rt_base_(rt_base)
{
    cache_.setCapacity(options.code_cache_capacity);
}

bool
Translator::specMatches(const BlockInfo &block, const SpecContext &spec)
{
    if (block.invalidated)
        return false;
    const GuardInfo &g = block.guard;
    if (g.checks_fp) {
        if (spec.tos != g.expect_tos)
            return false;
        if ((spec.tag & g.need_valid) != g.need_valid)
            return false;
        if ((spec.tag & g.need_empty) != 0)
            return false;
    }
    // Domain and XMM-format mismatches are repaired by the runtime
    // (cheap conversions), so they do not select variants.
    return true;
}

int64_t
Translator::allocProfile(uint32_t bytes)
{
    int64_t off = profile_next_;
    int64_t next = profile_next_ + ((bytes + 7) & ~7u);
    if (next >= static_cast<int64_t>(rt::area_size)) {
        // Graceful: the block runs uninstrumented rather than the
        // translator asserting. Flush GC reclaims the area eventually.
        stats.add("recover.profile_exhausted");
        return -1;
    }
    profile_next_ = next;
    return off;
}

void
Translator::flushCodeCache()
{
    for (auto &bp : blocks_) {
        if (!bp->invalidated)
            bp->invalidated = true;
    }
    cold_map_.clear();
    hot_map_.clear();
    cache_.flushAll();

    // Stale EIP -> cache-index mappings in the indirect fast-lookup
    // table and the bump-allocated profile counters all refer to the
    // dead generation; zero both regions and reclaim the profile area.
    for (int64_t off = rt::lookup_table; off < profile_next_; off += 8)
        mem_.writePriv(rt_base_ + static_cast<uint64_t>(off), 8, 0);
    profile_next_ = rt::profile_base;

    pending_cycles_ += options.cache_flush_cost;
    stats.add("recover.cache_flush");
    stats.set("cache.generation", cache_.generation());
    if (trace_)
        trace_->span("cache_flush", trace::Cat::Cache, 0, trace_now_(),
                     options.cache_flush_cost,
                     {{"generation",
                       static_cast<int64_t>(cache_.generation())}});
    if (flight_)
        flight_->record(flight::Kind::CacheFlush, 0, obsNow(),
                        static_cast<int64_t>(cache_.generation()));
}

void
Translator::maybeFlushForRoom()
{
    if (cache_.exhausted(options.cache_headroom))
        flushCodeCache();
}

uint32_t
Translator::readCounter(int64_t off) const
{
    uint64_t v = 0;
    mem_.readPriv(rt_base_ + static_cast<uint64_t>(off), 4, &v);
    return static_cast<uint32_t>(v);
}

BlockInfo *
Translator::blockById(int32_t id)
{
    if (id < 0 || id >= static_cast<int32_t>(blocks_.size()))
        return nullptr;
    return blocks_[id].get();
}

BlockInfo *
Translator::dispatch(uint32_t eip, const SpecContext &spec)
{
    auto hit = hot_map_.find(eip);
    if (hit != hot_map_.end()) {
        for (Variant &v : hit->second)
            if (specMatches(*v.block, spec))
                return v.block;
    }
    // Persisted artifacts are preferred over cold translation for the
    // same reason live hot versions are preferred over cold blocks: a
    // store hit skips both phases for this EIP.
    if (options.persist) {
        if (BlockInfo *adopted = adoptPersisted(eip, spec))
            return adopted;
    }
    auto cit = cold_map_.find(eip);
    if (cit != cold_map_.end()) {
        for (Variant &v : cit->second)
            if (specMatches(*v.block, spec))
                return v.block;
    }
    MisalignStage stage = MisalignStage::Light;
    auto mit = misalign_.find(eip);
    if (mit != misalign_.end() && mit->second.observed)
        stage = MisalignStage::Detailed;
    return translateCold(eip, spec, stage);
}

BlockInfo *
Translator::dispatchCold(uint32_t eip, const SpecContext &spec,
                         bool fresh_variant)
{
    if (!fresh_variant) {
        auto cit = cold_map_.find(eip);
        if (cit != cold_map_.end()) {
            for (Variant &v : cit->second)
                if (specMatches(*v.block, spec))
                    return v.block;
        }
    }
    auto mit = misalign_.find(eip);
    MisalignStage stage =
        (mit != misalign_.end() && mit->second.observed)
            ? MisalignStage::Detailed
            : MisalignStage::Light;
    return translateCold(eip, spec, stage);
}

void
Translator::disableHeat(BlockInfo *block)
{
    // Invalidated blocks carry indices from a dead cache generation.
    if (!block || block->invalidated || block->cache_entry < 0)
        return;
    for (int64_t i = block->cache_entry; i < block->cache_end; ++i) {
        ipf::Instr &in = cache_.at(i);
        if (in.op == IpfOp::Exit &&
            in.exit_reason == ExitReason::RegisterHot) {
            // Keep the RegisterHot reason on the Nop: the machine only
            // honors exit_reason on Exit ops, and enableHeat() uses it
            // to find the silenced counter when a pipelined session
            // fails and the block must become registrable again.
            in.op = IpfOp::Nop;
        }
    }
}

void
Translator::enableHeat(BlockInfo *block)
{
    if (!block || block->invalidated || block->cache_entry < 0)
        return;
    for (int64_t i = block->cache_entry; i < block->cache_end; ++i) {
        ipf::Instr &in = cache_.at(i);
        if (in.op == IpfOp::Nop &&
            in.exit_reason == ExitReason::RegisterHot)
            in.op = IpfOp::Exit;
    }
}

void
Translator::unlinkBlockExits(BlockInfo *block)
{
    if (!block || block->invalidated || block->cache_entry < 0)
        return;
    for (ExitStub &s : block->stubs) {
        if (s.cache_index < 0 || s.cache_index >= cache_.nextIndex())
            continue;
        ipf::Instr &in = cache_.at(s.cache_index);
        if (in.op != IpfOp::Br)
            continue;
        // Invert patchToBranch(): the stub record keeps the guest
        // target, so the LinkMiss exit is fully reconstructible.
        in.op = IpfOp::Exit;
        in.exit_reason = ExitReason::LinkMiss;
        in.exit_payload = s.target_eip;
        in.target = -1;
        s.patched = false;
    }
    if (trace_)
        trace_->instant("exit_unlink", trace::Cat::Cache, 0, trace_now_(),
                        {{"block", block->id},
                         {"eip",
                          static_cast<int64_t>(block->entry_eip)}});
}

void
Translator::recordMisalignment(uint32_t block_eip)
{
    MisalignHistory &h = misalign_[block_eip];
    h.observed = true;
    stats.add("misalign.events");
}

void
Translator::discardHotBlock(BlockInfo *block)
{
    if (!block || block->invalidated)
        return;
    block->invalidated = true;
    cache_.invalidateEntry(block->cache_entry, ExitReason::Resync,
                           block->entry_eip);
    MisalignHistory &h = misalign_[block->entry_eip];
    h.force_avoid = true;
    stats.add("hot.discarded_for_misalignment");
    noteProv(block->entry_eip, ProvState::Discarded, ProvCause::Misalign,
             block->id);
}

void
Translator::quarantineBlock(BlockInfo *block, ProvCause cause)
{
    if (!block || block->invalidated)
        return;
    block->invalidated = true;
    if (block->cache_entry >= 0)
        cache_.invalidateEntry(block->cache_entry, ExitReason::Resync,
                               block->entry_eip);
    stats.add("sentinel.blocks_quarantined");
    // Convicted code must never ship: purge every store record at this
    // entry so the next save cannot resurrect it in another process.
    if (options.persist) {
        options.persist->dropAt(block->entry_eip);
        noteProv(block->entry_eip, ProvState::Discarded,
                 ProvCause::QuarantinePurge, block->id);
    }
    noteProv(block->entry_eip, ProvState::Quarantined, cause, block->id);
    if (trace_)
        trace_->instant("quarantine", trace::Cat::Cache, 0, trace_now_(),
                        {{"block", block->id},
                         {"eip",
                          static_cast<int64_t>(block->entry_eip)}});
}

bool
Translator::corruptTranslation(ipf::CodeCache &cache, int64_t lo,
                               int64_t hi,
                               const std::function<uint64_t(uint64_t)> &pick)
{
    // Candidates are immediate-carrying ALU/move ops: flipping their low
    // imm bit yields code that still schedules, links, and runs — the
    // silent-wrong-value failure mode, not a crash.
    std::vector<int64_t> candidates;
    for (int64_t i = lo; i < hi; ++i) {
        const ipf::Instr &in = cache.at(i);
        if (in.op == IpfOp::AddImm || in.op == IpfOp::CmpImm ||
            in.op == IpfOp::ShlImm || in.op == IpfOp::Movl)
            candidates.push_back(i);
    }
    if (candidates.empty())
        return false;
    int64_t victim = candidates[pick(candidates.size())];
    cache.at(victim).imm ^= 1;
    return true;
}

void
Translator::invalidateRange(uint32_t addr, uint32_t len)
{
    int64_t dropped = 0;
    for (auto &bp : blocks_) {
        BlockInfo &b = *bp;
        if (b.invalidated || b.cache_entry < 0)
            continue;
        // Conservative: invalidate blocks whose entry lies in the range
        // or that carry any instruction translated from those bytes —
        // a hot trace that inlined a patched callee has a different
        // entry EIP but still executes the stale code.
        bool hit = b.entry_eip >= addr && b.entry_eip < addr + len;
        for (int64_t i = b.cache_entry; !hit && i < b.cache_end; ++i) {
            uint32_t ip = cache_.at(i).meta.ia32_ip;
            hit = ip >= addr && ip < addr + len;
        }
        if (hit) {
            b.invalidated = true;
            cache_.invalidateEntry(b.cache_entry, ExitReason::Resync,
                                   b.entry_eip);
            noteProv(b.entry_eip, ProvState::Discarded,
                     ProvCause::SmcWrite, b.id);
            ++dropped;
        }
    }
    stats.add("smc.invalidations");
    if (trace_)
        trace_->instant("smc_invalidate", trace::Cat::Cache, 0,
                        trace_now_(),
                        {{"addr", static_cast<int64_t>(addr)},
                         {"len", static_cast<int64_t>(len)},
                         {"blocks_dropped", dropped}});
    if (flight_)
        flight_->record(flight::Kind::SmcInvalidate, 0, obsNow(),
                        static_cast<int64_t>(addr),
                        static_cast<int64_t>(len), dropped);
}

BlockInfo *
Translator::regenerateForMisalignment(uint32_t eip,
                                      const SpecContext &spec)
{
    recordMisalignment(eip);
    // Invalidate existing variants at this EIP; regenerate at stage 2.
    auto cit = cold_map_.find(eip);
    if (cit != cold_map_.end()) {
        for (Variant &v : cit->second) {
            if (!v.block->invalidated) {
                v.block->invalidated = true;
                cache_.invalidateEntry(v.block->cache_entry,
                                       ExitReason::Resync, eip);
            }
        }
        cold_map_.erase(cit);
    }
    stats.add("misalign.block_regenerations");
    return translateCold(eip, spec, MisalignStage::Detailed);
}

void
Translator::emitBlockEnd(EmitEnv &env, const BasicBlock &bb,
                         BlockInfo *info, bool trace_mode,
                         int32_t loop_target_il)
{
    const Insn *last = bb.insns.empty() ? nullptr : &bb.insns.back();
    bool has_branch = last && ia32::endsBlock(*last);

    auto sync_for_exit = [&]() {
        if (trace_mode)
            env.syncAllToHomes();
        env.emitStatusTail();
    };

    if (!has_branch) {
        uint32_t next = bb.fall ? bb.fall
                      : (last ? last->next() : bb.start);
        sync_for_exit();
        env.endBranch(next);
        return;
    }

    const Insn &insn = *last;
    switch (insn.op) {
      case Op::Jcc: {
        env.beginInsn(insn, bb.flags_live_out);
        int16_t p = env.condPred(insn.cond);
        if (!trace_mode && info->edge_ctr_off >= 0)
            env.emitEdgeCounter(info->edge_ctr_off, p);
        env.endInsn();
        sync_for_exit();
        env.endBranch(insn.target(), p);
        env.endBranch(insn.next());
        info->ends_cond = true;
        info->taken_eip = insn.target();
        info->fall_eip = insn.next();
        return;
      }
      case Op::Jmp:
        sync_for_exit();
        env.endBranch(insn.target());
        return;
      case Op::Call: {
        env.beginInsn(insn, bb.flags_live_out);
        Insn push = insn;
        push.op = Op::Push;
        push.op_size = 4;
        push.dst = ia32::Operand::makeImm(insn.next());
        push.src = ia32::Operand{};
        translateInsn(env, push);
        env.endInsn();
        sync_for_exit();
        env.endBranch(insn.target());
        return;
      }
      case Op::CallInd: {
        env.beginInsn(insn, bb.flags_live_out);
        int16_t t = env.readOperand(insn.src, 4);
        Insn push = insn;
        push.op = Op::Push;
        push.op_size = 4;
        push.dst = ia32::Operand::makeImm(insn.next());
        push.src = ia32::Operand{};
        translateInsn(env, push);
        env.endInsn();
        sync_for_exit();
        env.endIndirect(t);
        info->ends_indirect = true;
        return;
      }
      case Op::JmpInd: {
        env.beginInsn(insn, bb.flags_live_out);
        int16_t t = env.readOperand(insn.src, 4);
        env.endInsn();
        sync_for_exit();
        env.endIndirect(t);
        info->ends_indirect = true;
        return;
      }
      case Op::Ret: {
        env.beginInsn(insn, bb.flags_live_out);
        int16_t esp = env.readGuest(ia32::RegEsp);
        int16_t t = env.emitLoad(esp, 4);
        int16_t na = env.newGr();
        env.emitOp(IpfOp::AddImm, na, esp, -1,
                   4 + static_cast<int64_t>(insn.src.imm));
        env.writeGuest(ia32::RegEsp, na, 4, /*clean=*/false);
        env.endInsn();
        sync_for_exit();
        env.endIndirect(t);
        info->ends_indirect = true;
        return;
      }
      case Op::Int: {
        env.beginInsn(insn, bb.flags_live_out);
        env.endInsn();
        sync_for_exit();
        int64_t payload =
            (static_cast<int64_t>(insn.src.imm & 0xff) << 32) |
            insn.next();
        env.endExit(ExitReason::SyscallGate, payload);
        return;
      }
      case Op::Int3:
        sync_for_exit();
        env.endExit(ExitReason::Breakpoint, insn.addr);
        return;
      case Op::Hlt:
        sync_for_exit();
        env.endExit(ExitReason::Halt, insn.next());
        return;
      default:
        sync_for_exit();
        env.endExit(ExitReason::GuestFault,
                    (static_cast<int64_t>(insn.addr) << 8) |
                        static_cast<int64_t>(
                            ia32::FaultKind::InvalidOpcode));
        return;
    }
    (void)loop_target_il;
}

bool
Translator::finishInto(EmitEnv &env, BlockInfo *info,
                       ipf::CodeCache &cache, const Options &options,
                       bool reorder, SchedTally *tally)
{
    // Concatenate head (guards + instrumentation) and body, fixing up
    // body-relative IL references.
    int32_t off = static_cast<int32_t>(env.head.size());
    std::vector<Il> all;
    all.reserve(env.head.size() + env.body.size());
    for (const Il &il : env.head.ils)
        all.push_back(il);
    for (Il il : env.body.ils) {
        if (il.target_il >= 0)
            il.target_il += off;
        all.push_back(il);
    }

    ScheduleResult res =
        schedule(std::move(all), cache, options, reorder,
                 options.enable_load_speculation && reorder,
                 &env.recovery);
    if (!res.ok)
        return false;
    info->cache_entry = res.entry;
    info->cache_end = res.end;
    info->recovery = std::move(env.recovery);
    info->guard = env.guard;
    for (const auto &stub : env.pending_stubs) {
        int64_t ci = res.il_to_cache[stub.il_index + off];
        el_assert(ci >= 0, "stub IL lost in scheduling");
        info->stubs.push_back({ci, stub.target_eip, false});
    }
    tally->groups = res.groups;
    tally->dead_removed = res.dead_removed;
    tally->loads_speculated = res.loads_speculated;
    tally->ipf_insns = res.end - res.entry;
    return true;
}

bool
Translator::finishBlock(EmitEnv &env, BlockInfo *info, bool reorder)
{
    SchedTally tally;
    if (!finishInto(env, info, cache_, options, reorder, &tally)) {
        stats.add("sched.failures");
        return false;
    }
    stats.add("sched.groups", tally.groups);
    stats.add("sched.dead_removed", tally.dead_removed);
    stats.add("sched.loads_speculated", tally.loads_speculated);
    stats.add(reorder ? "xlate.hot_ipf_insns" : "xlate.cold_ipf_insns",
              tally.ipf_insns);
    return true;
}

BlockInfo *
Translator::translateCold(uint32_t eip, const SpecContext &spec,
                          MisalignStage stage)
{
    // The flag must describe this attempt only: an abort injected at a
    // tolerant call site (link patching, hot chaining) must not latch
    // and reroute a later genuine decode failure.
    injected_abort_ = false;
    if (faultInjected(FaultSite::ColdXlateAbort)) {
        // Injected mid-session abort: report failure distinctly so the
        // runtime falls back to the interpreter instead of raising #UD.
        injected_abort_ = true;
        stats.add("xlate.cold_aborts_injected");
        return nullptr;
    }
    maybeFlushForRoom();
    BlockInfo *info = translateColdImpl(eip, spec, stage, true);
    if (info && info->cache_entry >= 0 &&
        faultInjected(FaultSite::Miscompile)) {
        FaultInjector *fi = activeFaultInjector();
        if (corruptTranslation(cache_, info->cache_entry, info->cache_end,
                               [fi](uint64_t n) { return fi->pick(n); }))
            stats.add("xlate.miscompiles_injected");
    }
    return info;
}

BlockInfo *
Translator::translateColdImpl(uint32_t eip, const SpecContext &spec,
                              MisalignStage stage, bool allow_flush_retry)
{
    Region region = discoverRegion(mem_, eip, options.analysis_window);
    computeFlagsLiveness(region);
    const BasicBlock *bb = region.find(eip);
    if (!bb || (bb->insns.empty() && !bb->ends_stop))
        return nullptr;

    auto info_holder = std::make_unique<BlockInfo>();
    BlockInfo *info = info_holder.get();
    info->id = static_cast<int32_t>(blocks_.size());
    info->kind = BlockKind::Cold;
    info->entry_eip = eip;
    info->misalign_stage = stage;
    info->insn_count = static_cast<uint32_t>(bb->insns.size());

    EmitEnv env(options, Phase::Cold, info->id, spec);
    (void)env;

    if (bb->insns.empty()) {
        // Nothing decodable at the entry itself: a precise guest fault.
        ia32::FaultKind kind = bb->fetch_fault
                                   ? ia32::FaultKind::PageFault
                                   : ia32::FaultKind::InvalidOpcode;
        env.endExit(ipf::ExitReason::GuestFault,
                    (static_cast<int64_t>(eip) << 8) |
                        static_cast<int64_t>(kind));
        if (!finishBlock(env, info, false))
            return nullptr;
        if (cache_.overCapacity() && allow_flush_retry) {
            stats.add("recover.cache_overflow_retry");
            flushCodeCache();
            return translateColdImpl(eip, spec, stage, false);
        }
        if (prov_) {
            noteProv(eip, ProvState::Decoded, ProvCause::None, info->id);
            noteProv(eip, ProvState::Cold, ProvCause::None, info->id);
        }
        cold_map_[eip].push_back({spec, info});
        blocks_.push_back(std::move(info_holder));
        return info;
    }

    if (options.enable_misalign_avoidance &&
        stage == MisalignStage::Detailed) {
        info->misalign_ctr_off = allocProfile(
            (static_cast<uint32_t>(bb->insns.size()) * 2 + 8) * 4);
    }

    if (!bb->insns.empty() && bb->insns.back().op == Op::Jcc)
        info->edge_ctr_off = allocProfile(4);

    // Generate the block; on renaming-pool exhaustion (possible for
    // pathological very long blocks), retry with a shorter prefix —
    // the remainder becomes a fall-through successor block.
    size_t limit = bb->insns.size();
    bool built = false;
    uint32_t fxch_emitted = 0;
    uint32_t access_count = 0;
    while (!built) {
        EmitEnv attempt(options, Phase::Cold, info->id, spec);
        attempt.setMisalignCtrOff(env.options.enable_misalign_avoidance &&
                                          info->misalign_ctr_off >= 0
                                      ? info->misalign_ctr_off
                                      : 0);
        if (!options.enable_misalign_avoidance) {
            attempt.setAccessPolicy(MisalignPolicy::Plain);
        } else if (stage == MisalignStage::Light ||
                   info->misalign_ctr_off < 0) {
            // Stage 1, or stage 2 whose per-access counters could not
            // be allocated (profile area exhausted): detect-and-exit.
            attempt.setAccessPolicy(MisalignPolicy::DetectExit);
        } else {
            attempt.setAccessPolicy(MisalignPolicy::CountAndAvoid, 1);
        }

        BasicBlock view = *bb;
        bool truncated = limit < bb->insns.size();
        if (truncated) {
            view.insns.resize(limit);
            view.taken = 0;
            view.fall = view.insns.back().next();
            view.ends_indirect = false;
            view.ends_stop = false;
        }
        std::vector<uint32_t> live =
            perInsnLiveFlags(view, view.flags_live_out);

        bool ended = false;
        for (size_t k = 0; k < view.insns.size(); ++k) {
            const Insn &insn = view.insns[k];
            if (ia32::endsBlock(insn))
                break; // handled by emitBlockEnd
            attempt.beginInsn(insn, live[k]);
            if (!translateInsn(attempt, insn)) {
                attempt.emitStatusTail();
                attempt.endExit(ExitReason::GuestFault,
                                (static_cast<int64_t>(insn.addr) << 8) |
                                    static_cast<int64_t>(
                                        ia32::FaultKind::InvalidOpcode));
                ended = true;
                stats.add("xlate.unsupported_insn");
                break;
            }
            attempt.endInsn();
        }
        if (!ended)
            emitBlockEnd(attempt, view, info, false, -1);

        // Head: SMC guard, speculation guards, use-counter.
        attempt.beginHead();
        if (mem_.check(eip, 1, mem::PermWrite)) {
            uint64_t bytes = 0;
            mem_.readPriv(eip, 8, &bytes);
            attempt.emitSmcGuard(eip, bytes, 8);
            info->smc_guarded = true;
        }
        attempt.emitFpGuard(&info->guard);
        attempt.emitMmxGuard(&info->guard);
        attempt.emitXmmGuard(&info->guard);
        if (options.enable_hot_phase) {
            if (info->use_ctr_off < 0)
                info->use_ctr_off = allocProfile(4);
            if (info->use_ctr_off >= 0)
                attempt.emitUseCounter(info->use_ctr_off,
                                       options.heat_threshold);
        }

        info->stubs.clear();
        info->recovery.clear();
        if (finishBlock(attempt, info, false)) {
            built = true;
            info->insn_count = static_cast<uint32_t>(view.insns.size());
            fxch_emitted = attempt.fxch_emitted;
            access_count = attempt.access_count;
        } else {
            if (limit <= 1)
                return nullptr; // even a single instruction failed
            limit /= 2;
            stats.add("xlate.cold_retries");
        }
    }

    if (cache_.overCapacity() && allow_flush_retry) {
        // The finished block itself crossed the cap: flush everything
        // (including it) and rebuild once into the fresh generation.
        stats.add("recover.cache_overflow_retry");
        flushCodeCache();
        return translateColdImpl(eip, spec, stage, false);
    }

    info->misalign_accesses = access_count;
    stats.add("xlate.cold_blocks");
    stats.add("xlate.cold_insns", info->insn_count);
    stats.add("fxch.emitted", fxch_emitted);
    double xlate_cost =
        options.cold_xlate_cost_per_insn * (info->insn_count + 1);
    pending_cycles_ += xlate_cost;
    if (trace_)
        trace_->span("cold_translate", trace::Cat::Translate, 0,
                     trace_now_(), xlate_cost,
                     {{"eip", static_cast<int64_t>(eip)},
                      {"block", info->id},
                      {"insns",
                       static_cast<int64_t>(info->insn_count)}});
    if (flight_)
        flight_->record(flight::Kind::ColdXlate, 0, obsNow(),
                        static_cast<int64_t>(eip), info->id,
                        static_cast<int64_t>(info->insn_count));
    if (prov_) {
        noteProv(eip, ProvState::Decoded, ProvCause::None, info->id);
        noteProv(eip, ProvState::Cold, ProvCause::None, info->id);
    }

    cold_map_[eip].push_back({spec, info});
    blocks_.push_back(std::move(info_holder));
    return info;
}

std::vector<const BasicBlock *>
Translator::selectTrace(const Region &region, uint32_t eip, bool *loops)
{
    *loops = false;
    std::vector<const BasicBlock *> trace;
    std::map<uint32_t, bool> visited;
    const BasicBlock *cur = region.find(eip);
    unsigned insns = 0;

    while (cur && trace.size() < options.max_trace_blocks &&
           insns + cur->insns.size() <= options.max_trace_insns) {
        trace.push_back(cur);
        visited[cur->start] = true;
        insns += static_cast<unsigned>(cur->insns.size());
        if (cur->ends_indirect || cur->ends_stop || cur->insns.empty())
            break;
        const Insn &last = cur->insns.back();
        uint32_t next = 0;
        if (last.op == Op::Jcc) {
            // Follow the hotter edge using the cold block's counters.
            uint32_t taken_n = 0, use_n = 1;
            auto cit = cold_map_.find(cur->start);
            if (cit != cold_map_.end() && !cit->second.empty()) {
                const BlockInfo *cb = cit->second.front().block;
                if (cb->use_ctr_off >= 0)
                    use_n = std::max(1u, readCounter(cb->use_ctr_off));
                if (cb->edge_ctr_off >= 0)
                    taken_n = readCounter(cb->edge_ctr_off);
            }
            next = (2 * taken_n >= use_n) ? cur->taken : cur->fall;
        } else if (last.op == Op::Jmp || last.op == Op::Call) {
            next = cur->taken;
        } else if (!ia32::endsBlock(last)) {
            next = cur->fall;
        }
        if (!next)
            break;
        if (next == trace.front()->start) {
            *loops = true;
            break;
        }
        if (visited.count(next))
            break;
        cur = region.find(next);
    }
    return trace;
}

bool
Translator::prepareHotInput(uint32_t entry_eip, const SpecContext &spec,
                            HotSessionInput *out)
{
    Region region = discoverRegion(mem_, entry_eip, 32);
    computeFlagsLiveness(region);
    bool loops = false;
    std::vector<const BasicBlock *> trace =
        selectTrace(region, entry_eip, &loops);
    if (trace.empty() || trace[0]->insns.empty())
        return false;

    unsigned trace_insns = 0;
    for (const BasicBlock *b : trace)
        trace_insns += static_cast<unsigned>(b->insns.size());

    // Loop unrolling (section 2: "If a loop is identified, it may be
    // unrolled").
    unsigned copies = 1;
    if (loops && options.enable_unroll &&
        trace_insns * options.unroll_factor <= options.max_trace_insns) {
        copies = options.unroll_factor;
        stats.add("hot.loops_unrolled");
    }

    out->entry_eip = entry_eip;
    out->spec = spec;
    out->loops = loops;
    out->copies = copies;
    out->trace_insns = trace_insns;
    out->trace.clear();
    out->policies.clear();
    out->covered_eips.clear();
    out->smc_guards.clear();

    bool any_misalign_history = false;
    for (const auto &[beip, h] : misalign_)
        any_misalign_history = any_misalign_history || h.observed;

    // Freeze the per-source-block misalignment policy (stage 3): the
    // session must not read misalign_, which the main thread keeps
    // mutating while workers run.
    for (size_t ti = 0; ti < trace.size(); ++ti) {
        const BasicBlock *bb = trace[ti];
        out->trace.push_back(*bb);
        if (!options.enable_misalign_avoidance) {
            out->policies.emplace_back(MisalignPolicy::Plain, 1);
        } else {
            auto hit = misalign_.find(bb->start);
            if (hit != misalign_.end() && hit->second.observed)
                out->policies.emplace_back(MisalignPolicy::Avoid,
                                           hit->second.granularity);
            else if (any_misalign_history)
                out->policies.emplace_back(MisalignPolicy::DetectLight,
                                           1);
            else
                out->policies.emplace_back(MisalignPolicy::Plain, 1);
        }
        if (ti >= 1)
            out->covered_eips.push_back(bb->start);
        // A constituent block on a writable page needs its SMC guard
        // carried into the hot trace, or a guest patch to the inlined
        // code would execute stale translations forever. The byte
        // snapshot happens here, on the main thread, so worker sessions
        // never race guest stores.
        if (mem_.check(bb->start, 1, mem::PermWrite)) {
            bool dup = false;
            for (const auto &[addr, bytes] : out->smc_guards)
                dup = dup || addr == bb->start;
            if (!dup) {
                uint64_t bytes = 0;
                mem_.readPriv(bb->start, 8, &bytes);
                out->smc_guards.emplace_back(bb->start, bytes);
            }
        }
    }
    return true;
}

void
Translator::runHotSession(const HotSessionInput &in,
                          const Options &options, FaultStream *faults,
                          HotArtifact *out)
{
    out->ok = false;
    out->spec = in.spec;
    out->covered_eips = in.covered_eips;
    out->smc_guards = in.smc_guards;
    if (faults && faults->shouldFire(FaultSite::HotXlateAbort)) {
        // Injected optimization-session abort; the adopting side's
        // bounded retry policy decides whether the block stays eligible.
        out->injected_abort = true;
        return;
    }

    const std::vector<BasicBlock> &trace = in.trace;
    BlockInfo *info = &out->proto;
    info->kind = BlockKind::Hot;
    info->entry_eip = in.entry_eip;
    info->insn_count = in.trace_insns * in.copies;

    // The block id is unknown until commit; publish() re-stamps
    // meta.block_id on every staged instruction (hot code never bakes
    // the id into payloads — only cold use counters do).
    EmitEnv env(options, Phase::Hot, /*block_id=*/-1, in.spec);

    bool aborted = false;
    bool tail_done = false;
    for (unsigned copy = 0; copy < in.copies && !aborted; ++copy) {
        for (size_t ti = 0; ti < trace.size() && !aborted; ++ti) {
            const BasicBlock &bb = trace[ti];

            env.setAccessPolicy(in.policies[ti].first,
                                in.policies[ti].second);

            std::vector<uint32_t> live =
                perInsnLiveFlags(bb, bb.flags_live_out);
            bool is_last_block =
                (ti + 1 == trace.size()) && (copy + 1 == in.copies);

            for (size_t k = 0; k < bb.insns.size(); ++k) {
                const Insn &insn = bb.insns[k];
                if (ia32::endsBlock(insn)) {
                    // Trace-internal control flow.
                    uint32_t on_trace = 0;
                    if (!is_last_block ||
                        (in.loops && copy + 1 == in.copies)) {
                        on_trace = (ti + 1 < trace.size())
                                       ? trace[ti + 1].start
                                       : trace[0].start;
                    }
                    if (insn.op == Op::Jcc && on_trace) {
                        env.beginInsn(insn, live[k]);
                        bool taken_on_trace = insn.target() == on_trace;
                        uint32_t off_eip = taken_on_trace ? insn.next()
                                                          : insn.target();
                        int16_t p_off = env.condPred(
                            taken_on_trace ? ia32::condNegate(insn.cond)
                                           : insn.cond);
                        env.endInsn();
                        env.sideExit(p_off, off_eip);
                        // Worker-private profile-site tally; merged
                        // into the shared stats at adoption.
                        out->stats.add("prof.hot_cond_probes");
                        continue;
                    }
                    if (insn.op == Op::Call && on_trace &&
                        insn.target() == on_trace) {
                        env.beginInsn(insn, live[k]);
                        Insn push = insn;
                        push.op = Op::Push;
                        push.op_size = 4;
                        push.dst = ia32::Operand::makeImm(insn.next());
                        push.src = ia32::Operand{};
                        translateInsn(env, push);
                        env.endInsn();
                        continue;
                    }
                    if (insn.op == Op::Jmp && on_trace &&
                        insn.target() == on_trace) {
                        continue;
                    }
                    // Trace terminator.
                    if (insn.op == Op::Jcc)
                        out->stats.add("prof.hot_cond_probes");
                    else if (insn.op == Op::JmpInd ||
                             insn.op == Op::CallInd ||
                             insn.op == Op::Ret)
                        out->stats.add("prof.hot_indirect_probes");
                    emitBlockEnd(env, bb, info, true, -1);
                    tail_done = true;
                    break;
                }
                env.beginInsn(insn, live[k]);
                if (!translateInsn(env, insn)) {
                    aborted = true;
                    break;
                }
                env.endInsn();
                if (env.overflowed()) {
                    aborted = true;
                    break;
                }
            }
            if (tail_done)
                break;
        }
        if (tail_done)
            break;
    }
    if (aborted)
        return;

    if (!tail_done) {
        // Trace falls through its end: loop back or link out.
        env.syncAllToHomes();
        env.emitStatusTail();
        bool can_loop = in.loops && env.tosDelta() == 0 &&
                        env.tagSet() == 0 && env.tagClear() == 0 &&
                        env.xmmEntryFormats() == env.xmmExitFormats();
        if (can_loop) {
            Il br = env.mk(IpfOp::Br);
            br.target_il = 0; // body start (post-guard)
            env.emit(br);
            out->stats.add("hot.loopback_edges");
        } else {
            uint32_t next = trace.back().insns.empty()
                ? trace.back().start
                : (in.loops ? trace[0].start
                            : trace.back().insns.back().next());
            env.endBranch(next);
        }
    }

    // Head: guards only (hot blocks carry no use counters).
    env.beginHead();
    for (const auto &[addr, bytes] : in.smc_guards) {
        env.emitSmcGuard(addr, bytes, 8);
        info->smc_guarded = true;
    }
    env.emitFpGuard(&info->guard);
    env.emitMmxGuard(&info->guard);
    env.emitXmmGuard(&info->guard);

    SchedTally tally;
    if (!finishInto(env, info, out->staging, options, true, &tally)) {
        out->stats.add("sched.failures");
        return;
    }

    out->stats.add("sched.groups", tally.groups);
    out->stats.add("sched.dead_removed", tally.dead_removed);
    out->stats.add("sched.loads_speculated", tally.loads_speculated);
    out->stats.add("fxch.eliminated", env.fxch_eliminated);
    out->stats.add("xlate.hot_trace_blocks",
                   static_cast<uint64_t>(trace.size()) * in.copies);
    if (faults && faults->shouldFire(FaultSite::Miscompile)) {
        // Worker-side miscompile: corrupt the private staging cache
        // before publication, from the per-candidate stream so the
        // victim choice is independent of worker count and scheduling.
        if (corruptTranslation(out->staging, info->cache_entry,
                               info->cache_end,
                               [faults](uint64_t n) {
                                   return faults->pick(n);
                               }))
            out->stats.add("xlate.miscompiles_injected");
    }
    out->ok = true;
}

BlockInfo *
Translator::commitHotArtifact(HotArtifact &art)
{
    // Entry EIP for black-box bookkeeping: the proto knows it once a
    // session ran; an artifact aborted before its session only carries
    // the cold block id.
    uint32_t prov_eip = art.proto.entry_eip;
    if (prov_eip == 0)
        if (BlockInfo *cold = blockById(art.cold_block_id))
            prov_eip = cold->entry_eip;
    auto discard = [&](ProvCause cause) {
        if (flight_)
            flight_->record(flight::Kind::HotDiscard, 0, obsNow(),
                            static_cast<int64_t>(prov_eip),
                            static_cast<int64_t>(cause));
        noteProv(prov_eip, ProvState::Discarded, cause,
                 art.cold_block_id);
    };
    if (prov_ && !art.from_store) {
        // The session itself ran on a worker (or inline); stamp it at
        // its planned completion time so the timeline is identical
        // across translation_threads in deterministic mode.
        double ts = art.ready_cycles > 0 ? art.ready_cycles : obsNow();
        prov_->note(prov_eip, ProvState::Session,
                    art.ok ? ProvCause::SessionOk
                           : ProvCause::SessionAbort,
                    art.cold_block_id, cache_.generation(), ts);
    }

    if (!art.ok) {
        if (art.injected_abort)
            stats.add("hot.aborts_injected");
        else
            stats.add("hot.aborted");
        // A failed session still carries partial counters (e.g. the
        // sched.failures that killed it).
        stats.merge(art.stats);
        discard(ProvCause::SessionAbort);
        return nullptr;
    }

    if (options.sentinel &&
        options.sentinel->isQuarantined(art.proto.entry_eip)) {
        // The sentinel convicted this EIP while the session was in
        // flight (or its quarantine has not been served yet): refuse
        // publication; the interpret gate decides when a retranslation
        // may happen, and it must start cold.
        stats.add("hot.quarantine_blocked");
        stats.merge(art.stats);
        discard(ProvCause::QuarantineBlocked);
        return nullptr;
    }

    BlockInfo *src = blockById(art.cold_block_id);
    if (src && src->invalidated) {
        // The guest invalidated the source block (SMC) while the
        // session was in flight. That path does not bump the cache
        // generation, so check it explicitly: the artifact was built
        // from bytes that no longer exist.
        stats.add("hot.discard_stale");
        discard(ProvCause::SmcWrite);
        return nullptr;
    }

    // Capture the store record while the proto and staging cache are
    // still artifact-relative (publish rebases the shared copy, and the
    // proto is moved into the block table below). It is committed to
    // the store only after publication fully succeeds.
    persist::ArtifactStore *store = options.persist;
    bool record_it =
        store != nullptr && !art.from_store && !store->sealed();
    persist::HotRecord rec;
    if (record_it) {
        rec.entry_eip = art.proto.entry_eip;
        rec.spec_tos = art.spec.tos;
        rec.spec_tag = art.spec.tag;
        rec.spec_mmx_domain = art.spec.mmx_domain;
        rec.spec_xmm_format = art.spec.xmm_format;
        rec.proto = art.proto;
        rec.covered_eips = art.covered_eips;
        rec.smc_guards = art.smc_guards;
        rec.code.reserve(art.staging.size());
        for (int64_t i = 0;
             i < static_cast<int64_t>(art.staging.size()); ++i)
            rec.code.push_back(art.staging.at(i));
    }

    int32_t new_id = static_cast<int32_t>(blocks_.size());
    int64_t base = cache_.publish(art.staging, art.generation, new_id);
    if (base < 0) {
        // Staged against a flushed generation: the trace was selected
        // from profile counters and cold blocks that no longer exist.
        stats.add("hot.discard_stale");
        discard(ProvCause::StaleGeneration);
        return nullptr;
    }

    auto info_holder = std::make_unique<BlockInfo>(std::move(art.proto));
    BlockInfo *info = info_holder.get();
    info->id = new_id;
    info->cache_entry += base;
    info->cache_end += base;
    for (ExitStub &s : info->stubs)
        s.cache_index += base;

    if (cache_.overCapacity()) {
        // The trace crossed the cap: flush it together with everything
        // else; the caller treats this as a failed (retryable) session.
        stats.add("recover.cache_overflow_retry");
        flushCodeCache();
        discard(ProvCause::CachePressure);
        return nullptr;
    }

    if (art.from_store) {
        // Adopted, not translated: the xlate.* counters keep meaning
        // "translation work done in this process", so the warm-start
        // reuse rate is persist.hits / (hits + xlate.hot_blocks).
        stats.add("persist.adopted_blocks");
        stats.add("persist.adopted_insns", info->insn_count);
    } else {
        stats.add("xlate.hot_blocks");
        stats.add("xlate.hot_insns", info->insn_count);
        stats.add("hot.commit_points", info->recovery.size());
        stats.add("xlate.hot_ipf_insns",
                  info->cache_end - info->cache_entry);
    }
    // Session-side counters (sched.*, fxch.eliminated,
    // xlate.hot_trace_blocks, hot.loopback_edges) were accumulated into
    // the artifact's private group on the worker; fold them in here, on
    // the main thread, so the shared group is never written by workers.
    stats.merge(art.stats);

    hot_map_[info->entry_eip].push_back({art.spec, info});

    // Redirect the cold entry so chained predecessors reach the hot
    // version ("retranslates and further optimizes those hotspots").
    auto cit = cold_map_.find(info->entry_eip);
    if (cit != cold_map_.end()) {
        for (Variant &v : cit->second) {
            if (!v.block->invalidated &&
                specMatches(*info, v.spec)) {
                ipf::Instr &entry = cache_.at(v.block->cache_entry);
                entry.op = IpfOp::Br;
                entry.qp = 0;
                entry.target = info->cache_entry;
                entry.exit_reason = ExitReason::None;
                entry.stop = true;
                v.block->hot_version = info->id;
                v.block->hot_state = HotState::Covered;
            }
        }
    }

    // Interior blocks of the trace are covered by this hot version;
    // suppress their own hot registration so overlapping traces are not
    // built for every entry point along the chain.
    for (uint32_t ceip : art.covered_eips) {
        auto it = cold_map_.find(ceip);
        if (it == cold_map_.end())
            continue;
        for (Variant &v : it->second) {
            if (!v.block->invalidated &&
                v.block->hot_state == HotState::Eligible) {
                v.block->hot_version = info->id;
                v.block->hot_state = HotState::Covered;
                disableHeat(v.block);
            }
        }
    }

    blocks_.push_back(std::move(info_holder));
    if (flight_)
        flight_->record(flight::Kind::HotCommit, 0, obsNow(),
                        static_cast<int64_t>(info->entry_eip), info->id,
                        static_cast<int64_t>(info->insn_count));
    noteProv(info->entry_eip,
             art.from_store ? ProvState::Adopted : ProvState::Published,
             art.from_store ? ProvCause::StoreHit : ProvCause::SessionOk,
             info->id);
    if (record_it) {
        store->record(std::move(rec));
        noteProv(info->entry_eip, ProvState::Persisted,
                 ProvCause::StoreRecord, info->id);
    }
    return info;
}

BlockInfo *
Translator::adoptPersisted(uint32_t eip, const SpecContext &spec)
{
    persist::ArtifactStore *store = options.persist;
    if (!store || !store->hasRecordsAt(eip))
        return nullptr;
    if (options.sentinel && options.sentinel->isQuarantined(eip)) {
        // The interpret gate owns this EIP until its cooldown passes;
        // commitHotArtifact would refuse anyway, so don't churn.
        return nullptr;
    }
    maybeFlushForRoom();

    BlockInfo *match = nullptr;
    for (const persist::HotRecord *rec : store->recordsAt(eip)) {
        // One adoption per record per run. A live previous block means
        // the dispatch spec just doesn't match it (re-publishing would
        // duplicate); an *invalidated* one means SMC convicted the
        // trace after adoption — re-heat it live like any local block,
        // or a guest that patches its code back and forth (jit_rewriter)
        // would loop adopt -> invalidate -> adopt forever.
        if (persist_adopted_.count(rec))
            continue;

        // Re-validate the artifact's SMC-guard windows against live
        // guest memory. The baked guards only catch stores that happen
        // *after* adoption; a mismatch here means the code was patched
        // since the store was written, and publishing the trace would
        // just bounce through SmcDetected -> invalidate -> re-adopt
        // forever.
        bool smc_ok = true;
        for (const auto &[addr, bytes] : rec->smc_guards) {
            uint64_t cur = 0;
            mem_.readPriv(addr, 8, &cur);
            if (cur != bytes) {
                smc_ok = false;
                break;
            }
        }
        if (!smc_ok) {
            store->stats.add("persist.smc_rejected");
            if (flight_)
                flight_->record(
                    flight::Kind::PersistReject, 0, obsNow(),
                    static_cast<int64_t>(eip),
                    static_cast<int64_t>(ProvCause::SmcMismatch));
            noteProv(eip, ProvState::Discarded, ProvCause::SmcMismatch,
                     -1);
            continue;
        }

        // Rebuild a HotArtifact and push it through the normal commit
        // path: generation check, sentinel gate, cold-entry
        // redirection, coverage — identical to a live session's.
        HotArtifact art;
        art.generation = cache_.generation();
        art.from_store = true;
        art.ok = true;
        art.spec.tos = rec->spec_tos;
        art.spec.tag = rec->spec_tag;
        art.spec.mmx_domain = rec->spec_mmx_domain;
        art.spec.xmm_format = rec->spec_xmm_format;
        art.proto = rec->proto;
        art.covered_eips = rec->covered_eips;
        art.smc_guards = rec->smc_guards;
        for (const ipf::Instr &i : rec->code)
            art.staging.emit(i);

        BlockInfo *info = commitHotArtifact(art);
        if (!info)
            continue;
        persist_adopted_[rec] = info->id;
        store->stats.add("persist.hits");
        store->stats.add("persist.loaded_blocks");
        // Adoption stalls the guest like a pipelined publish would; it
        // is hot-translation latency the store removed, minus the
        // session itself.
        chargeHotStall(options.hot_publish_cost_per_insn *
                       (info->insn_count + 1));
        if (trace_)
            trace_->instant("persist_adopt", trace::Cat::Hot, 0,
                            trace_now_(),
                            {{"block", info->id},
                             {"eip", static_cast<int64_t>(eip)}});
        if (flight_)
            flight_->record(flight::Kind::PersistAdopt, 0, obsNow(),
                            static_cast<int64_t>(eip),
                            static_cast<int64_t>(info->insn_count));
        if (!match && specMatches(*info, spec))
            match = info;
    }
    if (!match)
        store->noteMiss(eip);
    return match;
}

bool
Translator::persistCovers(uint32_t eip) const
{
    return options.persist && options.persist->hasRecordsAt(eip);
}

BlockInfo *
Translator::translateHot(uint32_t entry_eip, const SpecContext &spec)
{
    if (faultInjected(FaultSite::HotXlateAbort)) {
        // Injected optimization-session abort; the caller's bounded
        // retry policy decides whether the block stays eligible.
        stats.add("hot.aborts_injected");
        return nullptr;
    }
    maybeFlushForRoom();

    HotSessionInput input;
    if (!prepareHotInput(entry_eip, spec, &input))
        return nullptr;

    HotArtifact art;
    art.generation = cache_.generation();
    runHotSession(input, options, /*faults=*/nullptr, &art);
    if (flight_)
        flight_->record(flight::Kind::HotSession, 0, obsNow(),
                        static_cast<int64_t>(entry_eip),
                        static_cast<int64_t>(art.seq), art.ok ? 1 : 0);

    BlockInfo *info = commitHotArtifact(art);
    if (info && faultInjected(FaultSite::Miscompile)) {
        FaultInjector *fi = activeFaultInjector();
        if (corruptTranslation(cache_, info->cache_entry, info->cache_end,
                               [fi](uint64_t n) { return fi->pick(n); }))
            stats.add("xlate.miscompiles_injected");
    }
    if (info) {
        // Synchronous sessions stall the guest for the whole
        // optimization: the full cost is both overhead and hot stall.
        double cost =
            options.hot_xlate_cost_per_insn * (info->insn_count + 1);
        pending_cycles_ += cost;
        pending_hot_stall_ += cost;
        if (trace_) {
            // Inline session: snapshot/emit/commit all happen on the
            // guest lane, back to back on the simulated timeline.
            double t0 = trace_now_();
            int64_t eip = static_cast<int64_t>(entry_eip);
            trace_->span("hot_snapshot", trace::Cat::Hot, 0, t0, 0,
                         {{"eip", eip}, {"block", info->id}});
            trace_->span("hot_emit", trace::Cat::Hot, 0, t0, cost,
                         {{"eip", eip}, {"block", info->id}});
            // ts stays at t0 (not t0+cost): the stall cycles are only
            // charged to the machine after this service returns, so a
            // future timestamp could precede the next event on lane 0
            // and break per-lane monotonicity.
            trace_->span("hot_commit", trace::Cat::Hot, 0, t0, 0,
                         {{"eip", eip}, {"block", info->id}});
        }
    }
    return info;
}

} // namespace el::core
