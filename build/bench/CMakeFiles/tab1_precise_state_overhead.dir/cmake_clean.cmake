file(REMOVE_RECURSE
  "CMakeFiles/tab1_precise_state_overhead.dir/tab1_precise_state_overhead.cc.o"
  "CMakeFiles/tab1_precise_state_overhead.dir/tab1_precise_state_overhead.cc.o.d"
  "tab1_precise_state_overhead"
  "tab1_precise_state_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_precise_state_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
