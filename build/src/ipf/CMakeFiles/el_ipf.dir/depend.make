# Empty dependencies file for el_ipf.
# This may be replaced when dependencies are built.
