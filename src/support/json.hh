/**
 * @file
 * Minimal JSON support: a streaming writer used by the trace exporter,
 * the run-report builder and the benchmark JSON emitters, plus a small
 * recursive-descent parser used by trace validation and the tests.
 *
 * Deliberately tiny — no external dependency, no DOM mutation API. The
 * parser accepts strict JSON (objects, arrays, strings with the common
 * escapes, numbers, booleans, null) and is sufficient for files this
 * repository itself produces.
 */

#ifndef EL_SUPPORT_JSON_HH
#define EL_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/strfmt.hh"

namespace el::json
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
inline std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Render a double without trailing noise ("12" rather than "12.000000"). */
inline std::string
number(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15)
        return strfmt("%lld", static_cast<long long>(v));
    return strfmt("%.17g", v);
}

/**
 * Streaming writer with explicit begin/end scopes. Keys are only legal
 * inside objects; values only where a value is expected. The writer
 * inserts commas automatically.
 */
class Writer
{
  public:
    Writer() { stack_.push_back(Scope::Value); }

    void beginObject() { value("{"); push(Scope::Object); }
    void endObject() { stack_.pop_back(); out_ += "}"; }
    void beginArray() { value("["); push(Scope::Array); }
    void endArray() { stack_.pop_back(); out_ += "]"; }

    /** Start a key inside the current object. */
    void
    key(const std::string &k)
    {
        comma();
        out_ += "\"" + escape(k) + "\":";
        pending_value_ = true;
    }

    void str(const std::string &v) { value("\"" + escape(v) + "\""); }
    void num(double v) { value(number(v)); }
    void num(uint64_t v) { value(strfmt("%llu", (unsigned long long)v)); }
    void num(int64_t v) { value(strfmt("%lld", (long long)v)); }
    void num(int v) { num(static_cast<int64_t>(v)); }
    void num(unsigned v) { num(static_cast<uint64_t>(v)); }
    void boolean(bool v) { value(v ? "true" : "false"); }
    void null() { value("null"); }

    // Convenience: key + scalar in one call.
    void kv(const std::string &k, const std::string &v) { key(k); str(v); }
    void kv(const std::string &k, const char *v) { key(k); str(v); }
    void kv(const std::string &k, double v) { key(k); num(v); }
    void kv(const std::string &k, uint64_t v) { key(k); num(v); }
    void kv(const std::string &k, int64_t v) { key(k); num(v); }
    void kv(const std::string &k, int v) { key(k); num(v); }
    void kv(const std::string &k, unsigned v) { key(k); num(v); }
    void kv(const std::string &k, bool v) { key(k); boolean(v); }

    const std::string &str() const { return out_; }

  private:
    enum class Scope { Value, Object, Array };

    /** Enter a scope, resetting the element count at its depth (a
     *  previous sibling scope at the same depth left its own count). */
    void
    push(Scope s)
    {
        stack_.push_back(s);
        if (count_.size() < stack_.size())
            count_.resize(stack_.size(), 0);
        count_[stack_.size() - 1] = 0;
    }

    void
    comma()
    {
        if (count_.size() < stack_.size())
            count_.resize(stack_.size(), 0);
        if (count_[stack_.size() - 1]++ > 0)
            out_ += ",";
    }

    void
    value(const std::string &text)
    {
        if (stack_.back() == Scope::Array)
            comma();
        pending_value_ = false;
        out_ += text;
    }

    std::vector<Scope> stack_;
    std::vector<uint32_t> count_;
    bool pending_value_ = false;
    std::string out_;
};

// ----- parser -----------------------------------------------------------

/** A parsed JSON value (tree-owned). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Value> arr;
    std::map<std::string, Value> obj;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member lookup; null when absent or not an object. */
    const Value *
    find(const std::string &k) const
    {
        if (kind != Kind::Object)
            return nullptr;
        auto it = obj.find(k);
        return it == obj.end() ? nullptr : &it->second;
    }

    /** Member @p k as a number, or @p fallback when absent/mistyped. */
    double
    numberOr(const std::string &k, double fallback) const
    {
        const Value *v = find(k);
        return v && v->isNumber() ? v->num : fallback;
    }

    /** Member @p k as a string, or @p fallback when absent/mistyped. */
    std::string
    strOr(const std::string &k, const std::string &fallback) const
    {
        const Value *v = find(k);
        return v && v->isString() ? v->str : fallback;
    }
};

/** Strict parser; returns false (with @p error) on malformed input. */
class Parser
{
  public:
    static bool
    parse(const std::string &text, Value *out, std::string *error)
    {
        Parser p(text);
        if (!p.parseValue(out)) {
            if (error)
                *error = p.error_;
            return false;
        }
        p.skipWs();
        if (p.pos_ != text.size()) {
            if (error)
                *error = strfmt("trailing garbage at offset %zu", p.pos_);
            return false;
        }
        return true;
    }

  private:
    explicit Parser(const std::string &text) : text_(text) {}

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    fail(const std::string &why)
    {
        error_ = strfmt("%s at offset %zu", why.c_str(), pos_);
        return false;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("bad literal");
        pos_ += len;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // ASCII-only decode (sufficient for our own files).
                *out += static_cast<char>(code & 0x7f);
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    parseValue(Value *out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out->kind = Value::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                Value v;
                if (!parseValue(&v))
                    return false;
                out->obj.emplace(std::move(key), std::move(v));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out->kind = Value::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                Value v;
                if (!parseValue(&v))
                    return false;
                out->arr.push_back(std::move(v));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out->kind = Value::Kind::String;
            return parseString(&out->str);
        }
        if (c == 't') {
            out->kind = Value::Kind::Bool;
            out->b = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out->kind = Value::Kind::Bool;
            out->b = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out->kind = Value::Kind::Null;
            return literal("null", 4);
        }
        // Number.
        size_t start = pos_;
        if (c == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::string("0123456789.eE+-").find(text_[pos_]) !=
                std::string::npos))
            ++pos_;
        if (pos_ == start)
            return fail("expected value");
        try {
            out->num = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail("bad number");
        }
        out->kind = Value::Kind::Number;
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace el::json

#endif // EL_SUPPORT_JSON_HH
