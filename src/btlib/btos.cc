#include "btlib/btos.hh"

#include "support/strfmt.hh"

namespace el::btlib
{

BtOsClient::BtOsClient(const BtOsVtable &vtable) : vt_(vtable)
{
    if (vt_.major != btos_major) {
        error_ = strfmt("BTOS major version mismatch: BTLib %u.%u vs "
                        "BTGeneric %u.%u",
                        vt_.major, vt_.minor, btos_major, btos_minor);
        return;
    }
    if (vt_.minor > btos_minor) {
        // A newer BTLib may call functions this BTGeneric lacks; the
        // protocol only guarantees backward compatibility.
        error_ = strfmt("BTLib minor version %u newer than BTGeneric %u",
                        vt_.minor, btos_minor);
        return;
    }
    if (!vt_.alloc_pages || !vt_.system_service || !vt_.deliver_exception ||
        !vt_.charge_cycles || !vt_.os_name) {
        error_ = "BTOS vtable has null entries";
        return;
    }
    ok_ = true;
}

} // namespace el::btlib
