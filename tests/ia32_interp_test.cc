/**
 * @file
 * Interpreter semantics tests: integer ALU flags, control flow, stack
 * discipline, string ops, and fault precision (state unchanged on fault).
 */

#include <gtest/gtest.h>

#include "ia32/assembler.hh"
#include "ia32/interp.hh"

namespace el::ia32
{
namespace
{

constexpr uint32_t code_base = 0x08048000;
constexpr uint32_t data_base = 0x10000000;
constexpr uint32_t stack_top = 0x20000000;

/** Loads assembled code, maps data + stack, and runs the interpreter. */
class InterpTest : public ::testing::Test
{
  protected:
    void
    install(Assembler &as)
    {
        std::vector<uint8_t> code = as.finish();
        mem.map(code_base, code.size() + 16, mem::PermRWX);
        ASSERT_TRUE(mem.writeBytes(code_base, code.data(),
                                   code.size()).ok());
        mem.map(data_base, 0x10000, mem::PermRW);
        mem.map(stack_top - 0x10000, 0x10000, mem::PermRW);
        st.eip = code_base;
        st.gpr[RegEsp] = stack_top;
    }

    /** Step until HLT / fault / max steps; expect clean HLT. */
    StepResult
    run(uint64_t max_steps = 100000)
    {
        Interpreter interp(st, mem);
        StepResult res;
        for (uint64_t i = 0; i < max_steps; ++i) {
            res = interp.step();
            if (res.kind != StepKind::Ok)
                return res;
        }
        return res;
    }

    mem::Memory mem;
    State st;
};

TEST_F(InterpTest, MovAddSub)
{
    Assembler as(code_base);
    as.movRI(RegEax, 10);
    as.movRI(RegEbx, 3);
    as.aluRR(Op::Add, RegEax, RegEbx); // 13
    as.aluRI(Op::Sub, RegEax, 4);      // 9
    as.hlt();
    install(as);
    EXPECT_EQ(run().kind, StepKind::Halt);
    EXPECT_EQ(st.gpr[RegEax], 9u);
}

TEST_F(InterpTest, FlagsAddCarryOverflow)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0xffffffff);
    as.aluRI(Op::Add, RegEax, 1);
    as.hlt();
    install(as);
    run();
    EXPECT_TRUE(st.flag(FlagCf));
    EXPECT_TRUE(st.flag(FlagZf));
    EXPECT_FALSE(st.flag(FlagOf));
    EXPECT_FALSE(st.flag(FlagSf));
}

TEST_F(InterpTest, FlagsSignedOverflow)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0x7fffffff);
    as.aluRI(Op::Add, RegEax, 1);
    as.hlt();
    install(as);
    run();
    EXPECT_TRUE(st.flag(FlagOf));
    EXPECT_TRUE(st.flag(FlagSf));
    EXPECT_FALSE(st.flag(FlagCf));
}

TEST_F(InterpTest, FlagsSubBorrow)
{
    Assembler as(code_base);
    as.movRI(RegEax, 1);
    as.aluRI(Op::Sub, RegEax, 2);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 0xffffffffu);
    EXPECT_TRUE(st.flag(FlagCf));
    EXPECT_TRUE(st.flag(FlagSf));
}

TEST_F(InterpTest, AdcSbbChain)
{
    // 64-bit add: 0xffffffff_00000001 + 0x00000000_ffffffff
    Assembler as(code_base);
    as.movRI(RegEax, 0x00000001); // low
    as.movRI(RegEdx, 0xffffffff); // high
    as.aluRI(Op::Add, RegEax, -1); // add 0xffffffff
    as.aluRI(Op::Adc, RegEdx, 0);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 0u);
    EXPECT_EQ(st.gpr[RegEdx], 0u); // 0xffffffff + carry wraps to 0
}

TEST_F(InterpTest, IncPreservesCarry)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0xffffffff);
    as.aluRI(Op::Add, RegEax, 1); // sets CF
    as.incR(RegEax);              // must keep CF
    as.hlt();
    install(as);
    run();
    EXPECT_TRUE(st.flag(FlagCf));
    EXPECT_EQ(st.gpr[RegEax], 1u);
}

TEST_F(InterpTest, MulDiv)
{
    Assembler as(code_base);
    as.movRI(RegEax, 100000);
    as.movRI(RegEbx, 100000);
    as.mulR(RegEbx);              // edx:eax = 10^10
    as.movRI(RegEcx, 1000);
    as.divR(RegEcx);              // 10^7
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 10000000u);
    EXPECT_EQ(st.gpr[RegEdx], 0u);
}

TEST_F(InterpTest, IdivNegative)
{
    Assembler as(code_base);
    as.movRI(RegEax, static_cast<uint32_t>(-7));
    as.cdq();
    as.movRI(RegEcx, 2);
    as.idivR(RegEcx);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(static_cast<int32_t>(st.gpr[RegEax]), -3);
    EXPECT_EQ(static_cast<int32_t>(st.gpr[RegEdx]), -1);
}

TEST_F(InterpTest, DivideByZeroFaults)
{
    Assembler as(code_base);
    as.movRI(RegEax, 1);
    as.movRI(RegEdx, 0);
    as.movRI(RegEcx, 0);
    uint32_t div_eip = as.pc();
    as.divR(RegEcx);
    as.hlt();
    install(as);
    StepResult res = run();
    EXPECT_EQ(res.kind, StepKind::Fault);
    EXPECT_EQ(res.fault.kind, FaultKind::DivideError);
    EXPECT_EQ(res.fault.eip, div_eip);
    EXPECT_EQ(st.eip, div_eip) << "fault must be precise";
}

TEST_F(InterpTest, ShiftFlags)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0x80000000);
    as.shiftRI(Op::Shl, RegEax, 1);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 0u);
    EXPECT_TRUE(st.flag(FlagCf));
    EXPECT_TRUE(st.flag(FlagZf));
}

TEST_F(InterpTest, SarSignExtends)
{
    Assembler as(code_base);
    as.movRI(RegEax, static_cast<uint32_t>(-16));
    as.shiftRI(Op::Sar, RegEax, 2);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(static_cast<int32_t>(st.gpr[RegEax]), -4);
}

TEST_F(InterpTest, ShiftByClZeroLeavesFlags)
{
    Assembler as(code_base);
    as.movRI(RegEax, 1);
    as.aluRI(Op::Add, RegEax, -1); // ZF=1
    as.movRI8(RegCl, 0);
    as.movRI(RegEbx, 5);
    as.shiftRCl(Op::Shl, RegEbx);  // count 0: flags unchanged
    as.hlt();
    install(as);
    run();
    EXPECT_TRUE(st.flag(FlagZf));
    EXPECT_EQ(st.gpr[RegEbx], 5u);
}

TEST_F(InterpTest, RotateOps)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0x80000001);
    as.shiftRI(Op::Rol, RegEax, 4);
    as.movRI(RegEbx, 0x80000001);
    as.shiftRI(Op::Ror, RegEbx, 4);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 0x00000018u);
    EXPECT_EQ(st.gpr[RegEbx], 0x18000000u);
}

TEST_F(InterpTest, LoopWithConditional)
{
    // sum 1..10
    Assembler as(code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEcx, 10);
    Label top = as.label();
    as.bind(top);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 55u);
}

TEST_F(InterpTest, CallRetStack)
{
    Assembler as(code_base);
    Label fn = as.label();
    as.call(fn);
    as.hlt();
    as.bind(fn);
    as.movRI(RegEax, 0x1234);
    as.ret();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 0x1234u);
    EXPECT_EQ(st.gpr[RegEsp], stack_top);
}

TEST_F(InterpTest, RetWithImmPopsArgs)
{
    Assembler as(code_base);
    Label fn = as.label();
    as.pushI(11);
    as.pushI(22);
    as.call(fn);
    as.hlt();
    as.bind(fn);
    as.movRM(RegEax, memb(RegEsp, 4));  // first arg (22)
    as.aluRM(Op::Add, RegEax, memb(RegEsp, 8)); // + 11
    as.ret(8);
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 33u);
    EXPECT_EQ(st.gpr[RegEsp], stack_top);
}

TEST_F(InterpTest, IndirectJumpThroughRegister)
{
    Assembler as(code_base);
    as.jmpM(memb(RegEbp, 0)); // jump through a pointer in memory
    as.nop();                 // skipped
    as.movRI(RegEcx, 77);     // the jump target (found by byte scan)
    as.hlt();
    install(as);

    // Locate "mov ecx, imm32" (opcode 0xb9) to learn the target address.
    uint8_t buf[64];
    mem.fetch(code_base, buf, sizeof(buf));
    uint32_t target_addr = 0;
    for (unsigned i = 0; i < sizeof(buf); ++i) {
        if (buf[i] == 0xb9) {
            target_addr = code_base + i;
            break;
        }
    }
    ASSERT_NE(target_addr, 0u);
    st.gpr[RegEbp] = data_base;
    ASSERT_TRUE(mem.write(data_base, 4, target_addr).ok());
    run();
    EXPECT_EQ(st.gpr[RegEcx], 77u);
}

TEST_F(InterpTest, SetccCmovcc)
{
    Assembler as(code_base);
    as.movRI(RegEax, 5);
    as.aluRI(Op::Cmp, RegEax, 5);
    as.movRI(RegEbx, 0);
    as.setcc(Cond::E, RegBl);
    as.movRI(RegEcx, 111);
    as.movRI(RegEdx, 222);
    as.cmovcc(Cond::NE, RegEcx, RegEdx); // not taken
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEbx] & 0xff, 1u);
    EXPECT_EQ(st.gpr[RegEcx], 111u);
}

TEST_F(InterpTest, PartialRegisterWrites)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0xaabbccdd);
    as.movRI8(RegAl, 0x11);
    as.movRI8(RegAh, 0x22);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 0xaabb2211u);
}

TEST_F(InterpTest, MemoryLoadStore)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movMI(memb(RegEbx, 0), 0x11223344);
    as.movRM(RegEax, memb(RegEbx, 0));
    as.movRM8(RegCl, memb(RegEbx, 1));
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 0x11223344u);
    EXPECT_EQ(st.gpr[RegEcx] & 0xff, 0x33u);
}

TEST_F(InterpTest, PageFaultIsPrecise)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0x55);
    as.movRI(RegEbx, 0xdead0000); // unmapped
    uint32_t fault_eip = as.pc();
    as.movMR(memb(RegEbx, 0), RegEax);
    as.movRI(RegEax, 0x66); // must not execute
    as.hlt();
    install(as);
    StepResult res = run();
    EXPECT_EQ(res.kind, StepKind::Fault);
    EXPECT_EQ(res.fault.kind, FaultKind::PageFault);
    EXPECT_EQ(res.fault.eip, fault_eip);
    EXPECT_EQ(res.fault.addr, 0xdead0000u);
    EXPECT_TRUE(res.fault.is_write);
    EXPECT_EQ(st.gpr[RegEax], 0x55u);
}

TEST_F(InterpTest, PushStoreFaultLeavesEspUnchanged)
{
    // Table 1 of the paper: ESP must not move if the store faults.
    Assembler as(code_base);
    as.movRI(RegEsp, 0x40); // page 0 unmapped
    as.pushR(RegEax);
    as.hlt();
    install(as);
    st.gpr[RegEsp] = stack_top; // install() set this; re-run sets 0x40
    StepResult res = run();
    EXPECT_EQ(res.kind, StepKind::Fault);
    EXPECT_EQ(st.gpr[RegEsp], 0x40u);
}

TEST_F(InterpTest, IntReturnsVector)
{
    Assembler as(code_base);
    as.movRI(RegEax, 1);
    as.intN(0x80);
    as.hlt();
    install(as);
    Interpreter interp(st, mem);
    interp.step();
    StepResult res = interp.step();
    EXPECT_EQ(res.kind, StepKind::Int);
    EXPECT_EQ(res.vector, 0x80);
    EXPECT_EQ(st.eip, res.insn.next()) << "INT advances EIP";
}

TEST_F(InterpTest, StringRepMovs)
{
    Assembler as(code_base);
    as.cld();
    as.movRI(RegEsi, data_base);
    as.movRI(RegEdi, data_base + 0x100);
    as.movRI(RegEcx, 8);
    as.repMovsd();
    as.hlt();
    install(as);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(mem.write(data_base + i * 4, 4, 0x1000 + i).ok());
    run();
    for (int i = 0; i < 8; ++i) {
        uint64_t v;
        ASSERT_TRUE(mem.read(data_base + 0x100 + i * 4, 4, &v).ok());
        EXPECT_EQ(v, static_cast<uint64_t>(0x1000 + i));
    }
    EXPECT_EQ(st.gpr[RegEcx], 0u);
    EXPECT_EQ(st.gpr[RegEsi], data_base + 32);
}

TEST_F(InterpTest, StringRepStos)
{
    Assembler as(code_base);
    as.cld();
    as.movRI(RegEax, 0xabcdabcd);
    as.movRI(RegEdi, data_base);
    as.movRI(RegEcx, 4);
    as.repStosd();
    as.hlt();
    install(as);
    run();
    for (int i = 0; i < 4; ++i) {
        uint64_t v;
        ASSERT_TRUE(mem.read(data_base + i * 4, 4, &v).ok());
        EXPECT_EQ(v, 0xabcdabcdULL);
    }
}

TEST_F(InterpTest, LeaComputesWithoutMemoryAccess)
{
    Assembler as(code_base);
    as.movRI(RegEbx, 0xdead0000); // unmapped; lea must not touch it
    as.movRI(RegEcx, 4);
    as.lea(RegEax, membi(RegEbx, RegEcx, 4, 0x10));
    as.hlt();
    install(as);
    EXPECT_EQ(run().kind, StepKind::Halt);
    EXPECT_EQ(st.gpr[RegEax], 0xdead0000u + 16 + 0x10);
}

TEST_F(InterpTest, XchgRegMem)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movMI(memb(RegEbx, 0), 111);
    as.movRI(RegEax, 222);
    // xchg [ebx], eax
    as.byte(0x87);
    as.byte(0x03);
    as.hlt();
    install(as);
    run();
    uint64_t v;
    ASSERT_TRUE(mem.read(data_base, 4, &v).ok());
    EXPECT_EQ(st.gpr[RegEax], 111u);
    EXPECT_EQ(v, 222u);
}

TEST_F(InterpTest, SahfLahf)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0); // clear
    as.aluRI(Op::Cmp, RegEax, 1); // CF=1, SF=1
    as.lahf();
    as.movRR(RegEbx, RegEax);
    as.hlt();
    install(as);
    run();
    uint8_t ah = static_cast<uint8_t>(st.gpr[RegEbx] >> 8);
    EXPECT_TRUE(ah & 0x01);  // CF
    EXPECT_TRUE(ah & 0x80);  // SF
    EXPECT_TRUE(ah & 0x02);  // fixed bit 1
}

TEST_F(InterpTest, LeaveUnwindsFrame)
{
    Assembler as(code_base);
    as.pushR(RegEbp);
    as.movRR(RegEbp, RegEsp);
    as.aluRI(Op::Sub, RegEsp, 0x40);
    as.leave();
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEsp], stack_top);
}

TEST_F(InterpTest, InvalidOpcodeFaults)
{
    Assembler as(code_base);
    as.ud2();
    install(as);
    StepResult res = run();
    EXPECT_EQ(res.kind, StepKind::Fault);
    EXPECT_EQ(res.fault.kind, FaultKind::InvalidOpcode);
}

TEST_F(InterpTest, SixteenBitArithmetic)
{
    Assembler as(code_base);
    as.movRI(RegEax, 0x0001ffff);
    // add ax, 1 -> wraps to 0 in the low 16, preserving the high half
    as.byte(0x66);
    as.byte(0x83);
    as.byte(0xc0);
    as.byte(0x01);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.gpr[RegEax], 0x00010000u);
    EXPECT_TRUE(st.flag(FlagCf));
    EXPECT_TRUE(st.flag(FlagZf));
}

} // namespace
} // namespace el::ia32
