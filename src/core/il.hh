/**
 * @file
 * The translator's Intermediate Language (IL).
 *
 * Hot translation "generates associated Intermediate Language data
 * structures" per IA-32 instruction (section 2). An Il is an IPF
 * instruction skeleton plus wide operand ids (physical registers are ids
 * below the physical file size; virtual registers are ids above it),
 * scheduling classification, commit-point tagging and sideways marking.
 * Cold translation uses exactly the same ILs — the binary templates and
 * the IL generation "are derived from the same template source code" —
 * but runs them through the in-order scheduler.
 */

#ifndef EL_CORE_IL_HH
#define EL_CORE_IL_HH

#include <cstdint>
#include <vector>

#include "ipf/insn.hh"
#include "ipf/regs.hh"

namespace el::core
{

/** Operand register classes. */
enum class RegClass : uint8_t
{
    None,
    Gr,
    Fr,
    Pr,
    Br,
};

/** First virtual id of each class (ids below are physical). */
constexpr int16_t vgr_base = static_cast<int16_t>(ipf::num_grs);   // 128
constexpr int16_t vfr_base = static_cast<int16_t>(ipf::num_frs);   // 64
constexpr int16_t vpr_base = static_cast<int16_t>(ipf::num_prs);   // 64

/** Operand roles an IL instruction can have. */
struct OperandClasses
{
    RegClass dst = RegClass::None;
    RegClass dst2 = RegClass::None; //!< Second predicate of cmp/tbit.
    RegClass src[3] = {RegClass::None, RegClass::None, RegClass::None};
};

/** Classify the operands of an IPF opcode. */
OperandClasses operandClasses(ipf::IpfOp op);

/** One IL instruction. */
struct Il
{
    ipf::Instr ins;     //!< Opcode, immediates, sizes, metadata. The
                        //!< register fields are filled in by renaming.
    int16_t dst = -1;
    int16_t dst2 = -1;
    int16_t src1 = -1;
    int16_t src2 = -1;
    int16_t src3 = -1;
    int16_t qp = 0;     //!< Qualifying predicate id (0 = always).

    int32_t target_il = -1; //!< Intra-block branch target (IL index).

    // Scheduling classification.
    bool is_ordered = false;  //!< Must keep program order (stores,
                              //!< faulting ops, branches, syncs, chk.s).
    bool is_load = false;     //!< Guest data load (speculation candidate).
    bool sideways = false;    //!< Needed for side exits only.
    bool dead = false;
    int32_t region = 0;       //!< Commit region (reorder barrier index).
    int32_t weight = 0;       //!< Scheduling priority.

    /** Convenience: the IA-32 IP recorded in the metadata. */
    uint32_t ip() const { return ins.meta.ia32_ip; }
};

/** A block of ILs plus label bookkeeping. */
struct IlBuffer
{
    std::vector<Il> ils;

    int32_t
    append(const Il &il)
    {
        ils.push_back(il);
        return static_cast<int32_t>(ils.size()) - 1;
    }

    size_t size() const { return ils.size(); }
};

} // namespace el::core

#endif // EL_CORE_IL_HH
