#include "mem/memory.hh"

#include <cstring>

#include "support/bitfield.hh"
#include "support/logging.hh"

namespace el::mem
{

void
Memory::map(uint64_t addr, uint64_t len, Perm perm)
{
    uint64_t first = alignDown(addr, page_size);
    uint64_t last = alignUp(addr + len, page_size);
    for (uint64_t a = first; a < last; a += page_size) {
        auto &slot = pages_[a / page_size];
        if (!slot)
            slot = std::make_unique<Page>();
        slot->perm = perm;
    }
}

void
Memory::unmap(uint64_t addr, uint64_t len)
{
    uint64_t first = alignDown(addr, page_size);
    uint64_t last = alignUp(addr + len, page_size);
    for (uint64_t a = first; a < last; a += page_size)
        pages_.erase(a / page_size);
}

void
Memory::protect(uint64_t addr, uint64_t len, Perm perm)
{
    uint64_t first = alignDown(addr, page_size);
    uint64_t last = alignUp(addr + len, page_size);
    for (uint64_t a = first; a < last; a += page_size) {
        if (Page *p = find(a))
            p->perm = perm;
    }
}

bool
Memory::check(uint64_t addr, uint64_t len, Perm perm) const
{
    uint64_t first = alignDown(addr, page_size);
    uint64_t last = alignUp(addr + len, page_size);
    for (uint64_t a = first; a < last; a += page_size) {
        const Page *p = find(a);
        if (!p || (p->perm & perm) != perm)
            return false;
    }
    return true;
}

Memory::Page *
Memory::find(uint64_t addr)
{
    auto it = pages_.find(addr / page_size);
    return it == pages_.end() ? nullptr : it->second.get();
}

const Memory::Page *
Memory::find(uint64_t addr) const
{
    auto it = pages_.find(addr / page_size);
    return it == pages_.end() ? nullptr : it->second.get();
}

AccessResult
Memory::accessConst(uint64_t addr, void *buf, uint64_t len, bool check_perm,
                    Perm perm) const
{
    uint8_t *out = static_cast<uint8_t *>(buf);
    uint64_t done = 0;
    while (done < len) {
        uint64_t a = addr + done;
        const Page *p = find(a);
        if (!p)
            return {AccessError::Unmapped, a};
        if (check_perm && (p->perm & perm) != perm)
            return {AccessError::Protection, a};
        uint64_t off = a % page_size;
        uint64_t chunk = std::min(len - done, page_size - off);
        std::memcpy(out + done, p->data.data() + off, chunk);
        done += chunk;
    }
    return {};
}

AccessResult
Memory::access(uint64_t addr, void *buf, uint64_t len, bool write,
               bool check_perm, Perm perm)
{
    if (!write)
        return accessConst(addr, buf, len, check_perm, perm);
    const uint8_t *src = static_cast<const uint8_t *>(buf);
    uint64_t done = 0;
    while (done < len) {
        uint64_t a = addr + done;
        Page *p = find(a);
        if (!p)
            return {AccessError::Unmapped, a};
        if (check_perm && (p->perm & perm) != perm)
            return {AccessError::Protection, a};
        uint64_t off = a % page_size;
        uint64_t chunk = std::min(len - done, page_size - off);
        if (journal_ && check_perm &&
            !(a >= journal_->exclude_lo && a < journal_->exclude_hi)) {
            // Guest-visible write in an armed journal's view: record
            // old/new per byte so the sentinel can rewind and replay.
            const uint8_t *cur = p->data.data() + off;
            for (uint64_t k = 0; k < chunk; ++k)
                journal_->entries.push_back(
                    {a + k, cur[k], src[done + k]});
        }
        std::memcpy(p->data.data() + off, src + done, chunk);
        p->dirty = true;
        done += chunk;
    }
    return {};
}

void
Memory::undoJournal(const WriteJournal &journal)
{
    el_assert(journal_ != &journal, "undo through an armed journal");
    for (auto it = journal.entries.rbegin(); it != journal.entries.rend();
         ++it) {
        Page *p = find(it->addr);
        if (p) {
            p->data[it->addr % page_size] = it->old_byte;
            p->dirty = true;
        }
    }
}

void
Memory::redoJournal(const WriteJournal &journal)
{
    el_assert(journal_ != &journal, "redo through an armed journal");
    for (const WriteJournal::Entry &e : journal.entries) {
        Page *p = find(e.addr);
        if (p) {
            p->data[e.addr % page_size] = e.new_byte;
            p->dirty = true;
        }
    }
}

void
Memory::clearDirty()
{
    for (auto &[idx, p] : pages_)
        p->dirty = false;
}

void
Memory::forEachPage(
    const std::function<void(uint64_t, Perm, bool, bool,
                             const std::vector<uint8_t> &)> &fn) const
{
    for (const auto &[idx, p] : pages_)
        fn(idx * page_size, p->perm, p->has_code, p->dirty, p->data);
}

void
Memory::restorePage(uint64_t page_addr, Perm perm, bool has_code,
                    const uint8_t *data)
{
    auto &slot = pages_[page_addr / page_size];
    if (!slot)
        slot = std::make_unique<Page>();
    slot->perm = perm;
    slot->has_code = has_code;
    if (data) {
        std::memcpy(slot->data.data(), data, page_size);
        slot->dirty = true;
    }
}

AccessResult
Memory::read(uint64_t addr, unsigned len, uint64_t *out) const
{
    el_assert(len >= 1 && len <= 8, "bad read size %u", len);
    uint64_t v = 0;
    AccessResult r = accessConst(addr, &v, len, true, PermRead);
    if (r.ok())
        *out = v;
    return r;
}

AccessResult
Memory::write(uint64_t addr, unsigned len, uint64_t value)
{
    el_assert(len >= 1 && len <= 8, "bad write size %u", len);
    return access(addr, &value, len, true, true, PermWrite);
}

AccessResult
Memory::readBytes(uint64_t addr, void *out, uint64_t len) const
{
    return accessConst(addr, out, len, true, PermRead);
}

AccessResult
Memory::writeBytes(uint64_t addr, const void *src, uint64_t len)
{
    return access(addr, const_cast<void *>(src), len, true, true, PermWrite);
}

uint64_t
Memory::fetch(uint64_t addr, void *out, uint64_t len) const
{
    uint8_t *dst = static_cast<uint8_t *>(out);
    uint64_t done = 0;
    while (done < len) {
        uint64_t a = addr + done;
        const Page *p = find(a);
        if (!p || !(p->perm & PermExec))
            break;
        uint64_t off = a % page_size;
        uint64_t chunk = std::min(len - done, page_size - off);
        std::memcpy(dst + done, p->data.data() + off, chunk);
        done += chunk;
    }
    return done;
}

AccessResult
Memory::readPriv(uint64_t addr, unsigned len, uint64_t *out) const
{
    el_assert(len >= 1 && len <= 8, "bad read size %u", len);
    uint64_t v = 0;
    AccessResult r = accessConst(addr, &v, len, false, PermNone);
    if (r.ok())
        *out = v;
    return r;
}

AccessResult
Memory::writePriv(uint64_t addr, unsigned len, uint64_t value)
{
    el_assert(len >= 1 && len <= 8, "bad write size %u", len);
    return access(addr, &value, len, true, false, PermNone);
}

void
Memory::markCode(uint64_t addr, uint64_t len)
{
    uint64_t first = alignDown(addr, page_size);
    uint64_t last = alignUp(addr + len, page_size);
    for (uint64_t a = first; a < last; a += page_size) {
        if (Page *p = find(a))
            p->has_code = true;
    }
}

bool
Memory::isCode(uint64_t addr, uint64_t len) const
{
    uint64_t first = alignDown(addr, page_size);
    uint64_t last = alignUp(addr + len, page_size);
    for (uint64_t a = first; a < last; a += page_size) {
        const Page *p = find(a);
        if (p && p->has_code)
            return true;
    }
    return false;
}

} // namespace el::mem
