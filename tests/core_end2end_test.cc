/**
 * @file
 * End-to-end differential tests: every program is executed both by the
 * reference interpreter and by the IA-32 EL runtime on the IPF machine;
 * exit codes, console output and final architectural state must agree.
 * This is the master correctness property of the whole translator.
 */

#include <gtest/gtest.h>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"

namespace el
{
namespace
{

using btlib::OsAbi;
using guest::Image;
using guest::Layout;
using ia32::Assembler;
using ia32::Cond;
using ia32::Label;
using ia32::Op;
using namespace ia32; // register names

/** Emit "exit(code-in-eax)" for the Linux personality. */
void
emitExitEax(Assembler &as)
{
    as.movRR(RegEbx, RegEax); // code
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.intN(btlib::linux_abi::int_vector);
}

Image
makeImage(Assembler &as, uint32_t data_size = 0x10000)
{
    Image img;
    img.name = "test";
    img.entry = as.base();
    img.addCode(as.base(), as.finish());
    img.addData(Layout::data_base, data_size);
    return img;
}

/** Run both ways and compare everything. */
void
diffRun(const Image &img, OsAbi abi = OsAbi::Linux,
        core::Options opts = {})
{
    harness::Outcome ref = harness::runInterpreter(img, abi);
    harness::TranslatedRun tr = harness::runTranslated(img, abi, opts);
    const harness::Outcome &got = tr.outcome;

    EXPECT_EQ(ref.exited, got.exited);
    EXPECT_EQ(ref.faulted, got.faulted);
    if (ref.exited)
        EXPECT_EQ(ref.exit_code, got.exit_code);
    if (ref.faulted) {
        EXPECT_EQ(ref.fault.kind, got.fault.kind);
        EXPECT_EQ(ref.fault.eip, got.fault.eip);
    }
    EXPECT_EQ(ref.console, got.console);
    std::string why;
    EXPECT_TRUE(ref.final_state.equalsArch(got.final_state, &why))
        << "state mismatch: " << why;
}

TEST(End2End, StraightLineArithmetic)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 100);
    as.movRI(RegEcx, 7);
    as.imulRR(RegEax, RegEcx);
    as.aluRI(Op::Add, RegEax, -58);
    emitExitEax(as); // 642
    diffRun(makeImage(as));
}

TEST(End2End, LoopSum)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEcx, 1000);
    Label top = as.label();
    as.bind(top);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.aluRI(Op::And, RegEax, 0xff);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, MemoryLoadsStores)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEcx, 64);
    as.movRI(RegEax, 1);
    Label top = as.label();
    as.bind(top);
    as.movMR(membi(RegEbx, RegEcx, 4, -4), RegEax);
    as.aluRR(Op::Add, RegEax, RegEax);
    as.aluRI(Op::And, RegEax, 0xffff);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    // checksum
    as.movRI(RegEcx, 64);
    as.movRI(RegEax, 0);
    Label top2 = as.label();
    as.bind(top2);
    as.aluRM(Op::Add, RegEax, membi(RegEbx, RegEcx, 4, -4));
    as.decR(RegEcx);
    as.jcc(Cond::NE, top2);
    as.aluRI(Op::And, RegEax, 0x7f);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, CallsAndReturns)
{
    Assembler as(Layout::code_base);
    Label fib = as.label();
    as.movRI(RegEax, 12);
    as.call(fib);
    emitExitEax(as);
    // fib(eax) recursive
    as.bind(fib);
    as.aluRI(Op::Cmp, RegEax, 2);
    Label rec = as.label();
    as.jcc(Cond::AE, rec);
    as.ret();
    as.bind(rec);
    as.pushR(RegEax);
    as.aluRI(Op::Sub, RegEax, 1);
    as.call(fib);
    as.popR(RegEcx);
    as.pushR(RegEax);
    as.lea(RegEax, memb(RegEcx, -2));
    as.call(fib);
    as.popR(RegEcx);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.ret();
    diffRun(makeImage(as));
}

TEST(End2End, IndirectCallTable)
{
    Assembler as(Layout::code_base);
    Label f1 = as.label(), f2 = as.label(), f3 = as.label();
    Label start = as.label();
    as.jmp(start);
    as.bind(f1);
    as.aluRI(Op::Add, RegEax, 1);
    as.ret();
    as.bind(f2);
    as.aluRI(Op::Add, RegEax, 10);
    as.ret();
    as.bind(f3);
    as.aluRI(Op::Add, RegEax, 100);
    as.ret();
    as.bind(start);
    // Build a function table in data memory, then call through it.
    as.movRI(RegEbx, Layout::data_base);
    // Table entries are patched at run time via code: store addresses.
    // We don't know label addresses here, so compute via call/pop idiom:
    // instead, store function pointers using lea on absolute addrs is
    // impossible pre-link; use three direct calls through registers by
    // loading the table with mov imm32 (assembler resolves labels only
    // for branches). Keep it simple: call each function via register
    // using the return value of a helper that pushes/pops EIP.
    as.movRI(RegEax, 0);
    as.movRI(RegEcx, 30);
    Label loop = as.label();
    as.bind(loop);
    as.call(f1);
    as.call(f2);
    as.call(f3);
    as.decR(RegEcx);
    as.jcc(Cond::NE, loop);
    as.aluRI(Op::And, RegEax, 0xffff);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, IndirectJumpViaRegister)
{
    Assembler as(Layout::code_base);
    // call next to discover EIP, compute a jump target from it.
    Label here = as.label(), target = as.label(), loop = as.label();
    as.movRI(RegEax, 0);
    as.movRI(RegEcx, 50);
    as.bind(loop);
    as.call(here);
    as.bind(here);
    as.popR(RegEdx); // edx = address of `here`
    // Jump to `target` computed as here + (target - here): encode the
    // delta by scanning at test time is fragile; instead jump to the
    // address stored in memory which we seed with a store of a label
    // offset computed with call/pop at startup. Simplest: jmp edx lands
    // right back at `popR`? That would loop forever. Use ret-style jump:
    as.aluRI(Op::Add, RegEdx, 9); // skip pop(1)+add(3)+jmp(2)+inc... see below
    as.jmpR(RegEdx);
    as.incR(RegEax); // skipped (3 bytes: inc is 1 byte; padding nops)
    as.nop();
    as.nop();
    as.bind(target);
    as.aluRI(Op::Add, RegEax, 2);
    as.decR(RegEcx);
    as.jcc(Cond::NE, loop);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, FlagsChains)
{
    Assembler as(Layout::code_base);
    // adc/sbb chains + setcc/cmov consumers.
    as.movRI(RegEax, 0xffffffff);
    as.movRI(RegEdx, 1);
    as.aluRI(Op::Add, RegEax, 1);      // CF=1
    as.aluRI(Op::Adc, RegEdx, 0);      // edx=2
    as.movRI(RegEbx, 5);
    as.aluRI(Op::Sub, RegEbx, 7);      // CF=1 (borrow)
    as.aluRI(Op::Sbb, RegEdx, 0);      // edx=1
    as.setcc(Cond::S, RegAl);          // SF from sbb result
    as.movRI(RegEcx, 0);
    as.testRR(RegEdx, RegEdx);
    as.cmovcc(Cond::NE, RegEcx, RegEdx);
    as.shiftRI(Op::Shl, RegEcx, 4);
    as.aluRR(Op::Or, RegEax, RegEcx);
    as.aluRI(Op::And, RegEax, 0xff);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, ShiftsAndRotates)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0x12345678);
    as.shiftRI(Op::Rol, RegEax, 8);
    as.shiftRI(Op::Ror, RegEax, 4);
    as.movRI8(RegCl, 3);
    as.shiftRCl(Op::Shr, RegEax);
    as.movRI8(RegCl, 0);
    as.shiftRCl(Op::Shl, RegEax); // count 0: no change
    as.shiftRI(Op::Sar, RegEax, 2);
    as.aluRI(Op::And, RegEax, 0xffff);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, MulDivMix)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 123456789);
    as.movRI(RegEcx, 10007);
    as.cdq();
    as.idivR(RegEcx);           // eax=quotient edx=rem
    as.imulRR(RegEdx, RegEcx);
    as.aluRR(Op::Add, RegEax, RegEdx);
    as.movRI(RegEcx, 97);
    as.movRI(RegEdx, 0);
    as.divR(RegEcx);
    as.movRR(RegEax, RegEdx);   // remainder
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, ConsoleWrite)
{
    Assembler as(Layout::code_base);
    // Store "Hi!\n" to data memory and write it out.
    as.movRI(RegEbx, Layout::data_base);
    as.movMI(memb(RegEbx, 0), 0x0a216948); // "Hi!\n"
    as.movRI(RegEax, btlib::linux_abi::nr_write);
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEcx, 4);
    as.intN(0x80);
    as.movRI(RegEax, 7);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, WindowsAbiWorksToo)
{
    Assembler as(Layout::code_base);
    // Argument block at data_base: [code]
    as.movRI(RegEbx, Layout::data_base);
    as.movMI(memb(RegEbx, 0), 42);
    as.movRI(RegEax, btlib::windows_abi::nr_terminate);
    as.movRI(RegEdx, Layout::data_base);
    as.intN(btlib::windows_abi::int_vector);
    Image img = makeImage(as);
    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Windows);
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Windows);
    EXPECT_TRUE(ref.exited);
    EXPECT_TRUE(tr.outcome.exited);
    EXPECT_EQ(ref.exit_code, 42);
    EXPECT_EQ(tr.outcome.exit_code, 42);
}

TEST(End2End, PreciseDivideFault)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 5);
    as.movRI(RegEdx, 0);
    as.movRI(RegEcx, 0);
    as.movRI(RegEsi, 0x1234);
    as.divR(RegEcx); // #DE here
    as.movRI(RegEsi, 0x9999); // must not run
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, PrecisePageFault)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0x11);
    as.movRI(RegEbx, 0x00000040); // unmapped page 0
    as.movRI(RegEdi, 3);
    as.movMR(memb(RegEbx, 0), RegEax); // #PF
    as.movRI(RegEdi, 9);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, FaultHandlerResume)
{
    Assembler as(Layout::code_base);
    Label handler = as.label(), cont = as.label();
    // Register the handler, then fault, then continue.
    // set_handler(handler): need its absolute address; use call/pop.
    Label gethandler = as.label();
    as.call(gethandler);
    as.bind(gethandler);
    as.popR(RegEbx);           // ebx = address of `gethandler`
    as.aluRI(Op::Add, RegEbx, 64); // handler placed 64 bytes ahead
    as.movRI(RegEax, btlib::linux_abi::nr_set_handler);
    as.intN(0x80);
    as.movRI(RegEbx, 0x00000040);
    as.movRI(RegEdi, 0);
    as.movMR(memb(RegEbx, 0), RegEdi); // faults; handler resumes at cont
    as.bind(cont);
    as.movRI(RegEax, 123);
    emitExitEax(as);
    // Pad so the handler begins exactly 64 bytes after gethandler.
    while (as.pc() < Layout::code_base + 5 + 64)
        as.nop();
    as.bind(handler);
    // eax=fault kind, ebx=addr, ecx=old eip. Resume at `cont`.
    as.jmp(cont);
    diffRun(makeImage(as));
}

TEST(End2End, EightAndSixteenBitOps)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0x11223344);
    as.movRI8(RegAh, 0x7f);
    as.aluRI8(Op::Add, RegAh, 1);   // overflow in 8-bit
    as.movRI8(RegCl, 0x10);
    as.aluRR8(Op::Add, RegCl, RegAh);
    as.movzxRR8(RegEdx, RegCl);
    as.aluRR(Op::Add, RegEax, RegEdx);
    as.aluRI(Op::And, RegEax, 0xffffff);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, StringOps)
{
    Assembler as(Layout::code_base);
    as.cld();
    as.movRI(RegEdi, Layout::data_base);
    as.movRI(RegEax, 0x61616161);
    as.movRI(RegEcx, 16);
    as.repStosd();
    as.movRI(RegEsi, Layout::data_base);
    as.movRI(RegEdi, Layout::data_base + 0x100);
    as.movRI(RegEcx, 16);
    as.repMovsd();
    as.movRI(RegEax, 0);
    as.aluRM(Op::Add, RegEax, memabs(Layout::data_base + 0x100 + 60));
    as.aluRI(Op::And, RegEax, 0xff);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, HotPromotion)
{
    // A tight loop that crosses the heating threshold; results must be
    // identical with hot translation on and off.
    core::Options hot_on;
    hot_on.heat_threshold = 16;
    hot_on.hot_batch = 1;
    core::Options hot_off;
    hot_off.enable_hot_phase = false;

    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEcx, 5000);
    Label top = as.label();
    as.bind(top);
    as.movRM(RegEdx, memb(RegEbx, 0));
    as.aluRR(Op::Add, RegEdx, RegEcx);
    as.movMR(memb(RegEbx, 0), RegEdx);
    as.aluRR(Op::Add, RegEax, RegEdx);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.aluRI(Op::And, RegEax, 0xffff);
    emitExitEax(as);
    Image img = makeImage(as);

    diffRun(img, OsAbi::Linux, hot_on);
    diffRun(img, OsAbi::Linux, hot_off);

    // Confirm hot code actually ran in the hot_on configuration.
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, hot_on);
    EXPECT_GT(tr.runtime->translator().stats.get("xlate.hot_blocks"), 0u);
    EXPECT_GT(tr.runtime->machine().stats().cycles[static_cast<size_t>(
                  ipf::Bucket::Hot)],
              0.0);
}

TEST(End2End, HotFaultIsPrecise)
{
    // Fault deep inside a hot loop: reconstruction maps must produce
    // the same precise state the interpreter sees.
    core::Options hot;
    hot.heat_threshold = 8;
    hot.hot_batch = 1;

    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEcx, 2000);
    Label top = as.label();
    as.bind(top);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.movMR(memb(RegEbx, 0), RegEax);
    // After enough iterations, ebx walks off the mapped data area.
    as.aluRI(Op::Add, RegEbx, 64);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    emitExitEax(as);
    diffRun(makeImage(as, 0x8000), OsAbi::Linux, hot);
}

TEST(End2End, MisalignedAccessesStillCorrect)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base + 1); // misaligned base
    as.movRI(RegEcx, 200);
    as.movRI(RegEax, 0);
    Label top = as.label();
    as.bind(top);
    as.movMR(membi(RegEbx, RegEcx, 4, 0), RegEcx);
    as.aluRM(Op::Add, RegEax, membi(RegEbx, RegEcx, 4, 0));
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.aluRI(Op::And, RegEax, 0xffff);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(End2End, SelfModifyingCode)
{
    // Code on a writable page patches an immediate, then re-executes.
    Assembler as(Layout::code_base);
    Label patch_site = as.label(), loop = as.label();
    as.movRI(RegEdx, 2); // two passes
    as.bind(loop);
    as.bind(patch_site);
    as.movRI(RegEax, 1111); // imm patched to 2222 below
    // Patch the imm32 of the mov above (1 byte opcode + 4 imm).
    as.movRI(RegEbx, Layout::code_base + 6); // address of imm field
    as.movMI(memb(RegEbx, 0), 2222);
    as.decR(RegEdx);
    as.jcc(Cond::NE, loop);
    as.aluRI(Op::And, RegEax, 0xffff);
    emitExitEax(as);

    Image img;
    img.entry = Layout::code_base;
    Assembler as2(Layout::code_base);
    img.name = "smc";
    img.addCode(Layout::code_base, as.finish(), /*writable=*/true);
    img.addData(Layout::data_base, 0x1000);
    diffRun(img);
}

TEST(End2End, SmcRoundTripRetranslates)
{
    // The SMC guard must fire, invalidate the patched block, and the
    // retranslated block must execute the *new* bytes: the final pass
    // loads the patched immediate.
    // Each pass stores the (changing) loop counter into the mov's
    // immediate, so a re-entered translation sees modified bytes.
    Assembler as(Layout::code_base);
    Label loop = as.label();
    as.movRI(RegEdx, 3);
    as.bind(loop);
    as.movRI(RegEax, 1111); // imm rewritten with edx every pass
    as.movRI(RegEbx, Layout::code_base + 6); // imm field of the mov
    as.movMR(memb(RegEbx, 0), RegEdx);
    as.decR(RegEdx);
    as.jcc(Cond::NE, loop);
    as.aluRI(Op::And, RegEax, 0xffff);
    emitExitEax(as);

    Image img;
    img.name = "smc_roundtrip";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish(), /*writable=*/true);
    img.addData(Layout::data_base, 0x1000);

    harness::TranslatedRun tr = harness::runTranslated(img, OsAbi::Linux);
    ASSERT_TRUE(tr.outcome.exited);
    EXPECT_EQ(tr.outcome.exit_code, 2);
    // The round trip actually happened: SMC exit taken, a translation
    // invalidated, and the entry block translated more than once.
    EXPECT_GE(tr.runtime->stats().get("exits.smc"), 1u);
    EXPECT_GE(tr.runtime->translator().stats.get("smc.invalidations"), 1u);
    EXPECT_GE(tr.runtime->translator().stats.get("xlate.cold_blocks"), 2u);
    diffRun(img); // and the interpreter agrees on everything
}

TEST(End2End, SmcInvalidationIsSurgical)
{
    // Two independent blocks on the same writable page: invalidating
    // the guarded window of one must not take down its neighbour (the
    // SMC payload carries the window width, not a whole page).
    Assembler as(Layout::code_base);
    Label fn_a = as.label(), fn_b = as.label(), start = as.label();
    as.jmp(start);
    while (as.pc() < Layout::code_base + 32)
        as.nop();
    as.bind(fn_a);
    as.aluRI(Op::Add, RegEax, 3);
    as.ret();
    while (as.pc() < Layout::code_base + 64)
        as.nop();
    as.bind(fn_b);
    as.aluRI(Op::Add, RegEax, 7);
    as.ret();
    as.bind(start);
    as.movRI(RegEax, 0);
    as.movRI(RegEcx, 4);
    Label loop = as.label();
    as.bind(loop);
    as.call(fn_a);
    as.call(fn_b);
    as.decR(RegEcx);
    as.jcc(Cond::NE, loop);
    emitExitEax(as);

    Image img;
    img.name = "smc_surgical";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish(), /*writable=*/true);
    img.addData(Layout::data_base, 0x1000);

    harness::TranslatedRun tr = harness::runTranslated(img, OsAbi::Linux);
    ASSERT_TRUE(tr.outcome.exited);
    EXPECT_EQ(tr.outcome.exit_code, 40);

    core::Translator &xlate = tr.runtime->translator();
    const uint32_t a_entry = Layout::code_base + 32;
    const uint32_t b_entry = Layout::code_base + 64;
    bool saw_a = false, saw_b = false;
    xlate.invalidateRange(a_entry, 8); // the guarded window of fn_a
    for (int32_t id = 0; core::BlockInfo *b = xlate.blockById(id); ++id) {
        if (b->entry_eip == a_entry && b->kind == core::BlockKind::Cold) {
            saw_a = true;
            EXPECT_TRUE(b->invalidated) << "patched block must die";
        }
        if (b->entry_eip == b_entry && b->kind == core::BlockKind::Cold) {
            saw_b = true;
            EXPECT_FALSE(b->invalidated)
                << "same-page neighbour must survive";
        }
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
}

TEST(End2End, HotFaultReconstructsPreciseState)
{
    // A fault that lands while hot-trace code is executing must be
    // reconstructed to the exact interpreter state via the recovery
    // maps — registers, EIP and fault coordinates all bit-equal.
    core::Options hot;
    hot.heat_threshold = 8;
    hot.hot_batch = 1;

    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEsi, 0x5a5a0001); // distinctive live values the
    as.movRI(RegEdi, 0x0f0f0002); // reconstruction must preserve
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEcx, 2000);
    Label top = as.label();
    as.bind(top);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.aluRI(Op::Xor, RegEsi, 0x1111);
    as.movMR(memb(RegEbx, 0), RegEax);
    // ebx eventually walks off the mapped data area -> #PF in hot code.
    as.aluRI(Op::Add, RegEbx, 64);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    emitExitEax(as);
    Image img = makeImage(as, 0x8000);

    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Linux);
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, hot);
    ASSERT_TRUE(ref.faulted);
    ASSERT_TRUE(tr.outcome.faulted);
    // The fault really was serviced out of hot code, not a cold block.
    EXPECT_GT(tr.runtime->translator().stats.get("xlate.hot_blocks"), 0u);
    EXPECT_GE(tr.runtime->stats().get("faults.memory"), 1u);
    EXPECT_EQ(ref.fault.kind, tr.outcome.fault.kind);
    EXPECT_EQ(ref.fault.eip, tr.outcome.fault.eip);
    EXPECT_EQ(ref.fault.addr, tr.outcome.fault.addr);
    std::string why;
    EXPECT_TRUE(ref.final_state.equalsArch(tr.outcome.final_state, &why))
        << "hot-fault state mismatch: " << why;
}

TEST(End2End, EflagsEliminationAblationAgrees)
{
    core::Options no_elim;
    no_elim.enable_eflags_elim = false;
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEcx, 500);
    Label top = as.label();
    as.bind(top);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.aluRI(Op::Xor, RegEax, 0x5a5a);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.aluRI(Op::And, RegEax, 0xffff);
    emitExitEax(as);
    diffRun(makeImage(as), OsAbi::Linux, no_elim);
}

} // namespace
} // namespace el
