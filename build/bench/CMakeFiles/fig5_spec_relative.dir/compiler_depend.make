# Empty compiler generated dependencies file for fig5_spec_relative.
# This may be replaced when dependencies are built.
