/**
 * @file
 * SSE tests: moves (including the MOVAPS alignment fault), packed and
 * scalar arithmetic in all four data formats, format conversions, and
 * UCOMISS flag generation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "ia32/assembler.hh"
#include "ia32/interp.hh"

namespace el::ia32
{
namespace
{

constexpr uint32_t code_base = 0x08048000;
constexpr uint32_t data_base = 0x10000000;
constexpr uint32_t stack_top = 0x20000000;

class SimdTest : public ::testing::Test
{
  protected:
    void
    install(Assembler &as)
    {
        std::vector<uint8_t> code = as.finish();
        mem.map(code_base, code.size() + 16, mem::PermRWX);
        ASSERT_TRUE(
            mem.writeBytes(code_base, code.data(), code.size()).ok());
        mem.map(data_base, 0x10000, mem::PermRW);
        mem.map(stack_top - 0x10000, 0x10000, mem::PermRW);
        st.eip = code_base;
        st.gpr[RegEsp] = stack_top;
    }

    StepResult
    run(uint64_t max_steps = 100000)
    {
        Interpreter interp(st, mem);
        StepResult res;
        for (uint64_t i = 0; i < max_steps; ++i) {
            res = interp.step();
            if (res.kind != StepKind::Ok)
                return res;
        }
        return res;
    }

    void
    putPs(uint32_t addr, float a, float b, float c, float d)
    {
        float v[4] = {a, b, c, d};
        ASSERT_TRUE(mem.writeBytes(addr, v, 16).ok());
    }

    void
    putPd(uint32_t addr, double a, double b)
    {
        double v[2] = {a, b};
        ASSERT_TRUE(mem.writeBytes(addr, v, 16).ok());
    }

    float
    ps(uint32_t addr, int lane)
    {
        float v;
        EXPECT_TRUE(mem.readBytes(addr + lane * 4, &v, 4).ok());
        return v;
    }

    double
    pd(uint32_t addr, int lane)
    {
        double v;
        EXPECT_TRUE(mem.readBytes(addr + lane * 8, &v, 8).ok());
        return v;
    }

    mem::Memory mem;
    State st;
};

TEST_F(SimdTest, PackedSingleArithmetic)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movapsXM(0, memb(RegEbx, 0));
    as.movapsXM(1, memb(RegEbx, 16));
    as.sseArithXX(Op::Addps, 0, 1);
    as.sseArithXM(Op::Mulps, 0, memb(RegEbx, 32));
    as.movapsMX(memb(RegEbx, 48), 0);
    as.hlt();
    install(as);
    putPs(data_base, 1, 2, 3, 4);
    putPs(data_base + 16, 10, 20, 30, 40);
    putPs(data_base + 32, 2, 2, 2, 2);
    run();
    EXPECT_FLOAT_EQ(ps(data_base + 48, 0), 22.0f);
    EXPECT_FLOAT_EQ(ps(data_base + 48, 1), 44.0f);
    EXPECT_FLOAT_EQ(ps(data_base + 48, 2), 66.0f);
    EXPECT_FLOAT_EQ(ps(data_base + 48, 3), 88.0f);
}

TEST_F(SimdTest, ScalarSingleLeavesUpperLanes)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movapsXM(0, memb(RegEbx, 0));
    as.sseArithXM(Op::Addss, 0, memb(RegEbx, 16));
    as.movapsMX(memb(RegEbx, 32), 0);
    as.hlt();
    install(as);
    putPs(data_base, 1, 2, 3, 4);
    putPs(data_base + 16, 100, 0, 0, 0);
    run();
    EXPECT_FLOAT_EQ(ps(data_base + 32, 0), 101.0f);
    EXPECT_FLOAT_EQ(ps(data_base + 32, 1), 2.0f);
    EXPECT_FLOAT_EQ(ps(data_base + 32, 3), 4.0f);
}

TEST_F(SimdTest, MovssLoadZeroesUpperLanes)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movapsXM(0, memb(RegEbx, 0));
    as.movssXM(0, memb(RegEbx, 16));
    as.movapsMX(memb(RegEbx, 32), 0);
    as.hlt();
    install(as);
    putPs(data_base, 1, 2, 3, 4);
    putPs(data_base + 16, 9, 9, 9, 9);
    run();
    EXPECT_FLOAT_EQ(ps(data_base + 32, 0), 9.0f);
    EXPECT_FLOAT_EQ(ps(data_base + 32, 1), 0.0f);
    EXPECT_FLOAT_EQ(ps(data_base + 32, 3), 0.0f);
}

TEST_F(SimdTest, PackedDoubleArithmetic)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movapsXM(0, memb(RegEbx, 0));
    as.sseArithXM(Op::Addpd, 0, memb(RegEbx, 16));
    as.sseArithXM(Op::Mulpd, 0, memb(RegEbx, 32));
    as.movapsMX(memb(RegEbx, 48), 0);
    as.hlt();
    install(as);
    putPd(data_base, 1.5, 2.5);
    putPd(data_base + 16, 0.5, 0.5);
    putPd(data_base + 32, 10.0, 100.0);
    run();
    EXPECT_DOUBLE_EQ(pd(data_base + 48, 0), 20.0);
    EXPECT_DOUBLE_EQ(pd(data_base + 48, 1), 300.0);
}

TEST_F(SimdTest, PackedIntegerDomain)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movdqaXM(0, memb(RegEbx, 0));
    as.sseArithXM(Op::PadddX, 0, memb(RegEbx, 16));
    as.movdqaMX(memb(RegEbx, 32), 0);
    as.hlt();
    install(as);
    uint32_t a[4] = {1, 2, 0xffffffff, 4};
    uint32_t b[4] = {10, 20, 1, 40};
    ASSERT_TRUE(mem.writeBytes(data_base, a, 16).ok());
    ASSERT_TRUE(mem.writeBytes(data_base + 16, b, 16).ok());
    run();
    uint32_t r[4];
    ASSERT_TRUE(mem.readBytes(data_base + 32, r, 16).ok());
    EXPECT_EQ(r[0], 11u);
    EXPECT_EQ(r[1], 22u);
    EXPECT_EQ(r[2], 0u); // wraparound
    EXPECT_EQ(r[3], 44u);
}

TEST_F(SimdTest, MovapsMisalignedFaults)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base + 4); // misaligned by 4
    uint32_t fault_eip = as.pc();
    as.movapsXM(0, memb(RegEbx, 0));
    as.hlt();
    install(as);
    StepResult res = run();
    EXPECT_EQ(res.kind, StepKind::Fault);
    EXPECT_EQ(res.fault.kind, FaultKind::GeneralProtect);
    EXPECT_EQ(res.fault.eip, fault_eip);
}

TEST_F(SimdTest, MovupsToleratesMisalignment)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base + 4);
    as.movupsXM(0, memb(RegEbx, 0));
    as.movupsMX(memb(RegEbx, 100), 0); // also misaligned
    as.hlt();
    install(as);
    putPs(data_base + 4, 5, 6, 7, 8);
    EXPECT_EQ(run().kind, StepKind::Halt);
    EXPECT_FLOAT_EQ(ps(data_base + 104, 2), 7.0f);
}

TEST_F(SimdTest, FormatConversions)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movapsXM(1, memb(RegEbx, 0));
    as.cvtps2pd(0, 1); // two floats -> two doubles
    as.movapsMX(memb(RegEbx, 16), 0);
    as.cvtpd2ps(2, 0); // back to floats
    as.movapsMX(memb(RegEbx, 32), 2);
    as.hlt();
    install(as);
    putPs(data_base, 1.25f, -2.5f, 99.0f, 99.0f);
    run();
    EXPECT_DOUBLE_EQ(pd(data_base + 16, 0), 1.25);
    EXPECT_DOUBLE_EQ(pd(data_base + 16, 1), -2.5);
    EXPECT_FLOAT_EQ(ps(data_base + 32, 0), 1.25f);
    EXPECT_FLOAT_EQ(ps(data_base + 32, 1), -2.5f);
    EXPECT_FLOAT_EQ(ps(data_base + 32, 2), 0.0f);
}

TEST_F(SimdTest, IntFloatConversions)
{
    Assembler as(code_base);
    as.movRI(RegEax, static_cast<uint32_t>(-41));
    as.cvtsi2ss(0, RegEax);
    as.sseArithXX(Op::Addss, 0, 0); // -82
    as.cvttss2si(RegEcx, 0);
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(static_cast<int32_t>(st.gpr[RegEcx]), -82);
}

TEST_F(SimdTest, UcomissFlags)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movssXM(0, memb(RegEbx, 0));
    as.movssXM(1, memb(RegEbx, 4));
    as.ucomissXX(0, 1);
    as.setcc(Cond::B, RegAl);
    as.setcc(Cond::E, RegCl);
    as.hlt();
    install(as);
    float vals[2] = {1.0f, 2.0f};
    ASSERT_TRUE(mem.writeBytes(data_base, vals, 8).ok());
    run();
    EXPECT_EQ(st.gpr[RegEax] & 0xff, 1u); // 1.0 < 2.0 => CF
    EXPECT_EQ(st.gpr[RegEcx] & 0xff, 0u);
}

TEST_F(SimdTest, XorpsZeroIdiom)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movapsXM(0, memb(RegEbx, 0));
    as.sseArithXX(Op::Xorps, 0, 0);
    as.movapsMX(memb(RegEbx, 16), 0);
    as.hlt();
    install(as);
    putPs(data_base, 1, 2, 3, 4);
    run();
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(ps(data_base + 16, i), 0.0f);
}

TEST_F(SimdTest, MovsdScalarDouble)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movsdXM(0, memb(RegEbx, 0));
    as.sseArithXM(Op::Addsd, 0, memb(RegEbx, 8));
    as.movsdMX(memb(RegEbx, 16), 0);
    as.hlt();
    install(as);
    double vals[2] = {1.125, 2.25};
    ASSERT_TRUE(mem.writeBytes(data_base, vals, 16).ok());
    run();
    EXPECT_DOUBLE_EQ(pd(data_base + 16, 0), 3.375);
}

} // namespace
} // namespace el::ia32
