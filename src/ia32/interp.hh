/**
 * @file
 * Reference IA-32 interpreter.
 *
 * The interpreter defines guest semantics for this reproduction. It plays
 * three roles:
 *  - the correctness oracle for differential testing of the translator,
 *  - the model of the "existing hardware circuitry" the paper's Figure 5
 *    compares against conceptually, and
 *  - the first-phase comparator ("translators using interpretation in the
 *    first phase", section 6) for the ablation benchmarks.
 *
 * Guest-visible faults and software interrupts are returned as events,
 * never thrown; the OS layer decides what happens next (Figure 3).
 */

#ifndef EL_IA32_INTERP_HH
#define EL_IA32_INTERP_HH

#include <cstdint>

#include "ia32/decoder.hh"
#include "ia32/fault.hh"
#include "ia32/insn.hh"
#include "ia32/state.hh"
#include "mem/memory.hh"

namespace el::ia32
{

/** What a single interpreted step produced. */
enum class StepKind : uint8_t
{
    Ok,    //!< Instruction retired normally.
    Fault, //!< Guest-visible fault; state unchanged by the instruction.
    Int,   //!< Software interrupt (INT n); EIP already advanced.
    Halt,  //!< HLT retired.
};

/** Result of Interpreter::step(). */
struct StepResult
{
    StepKind kind = StepKind::Ok;
    Fault fault{};        //!< Valid when kind == Fault.
    uint8_t vector = 0;   //!< Valid when kind == Int.
    Insn insn{};          //!< The instruction that was executed/attempted.
};

/** Executes IA-32 instructions directly against State + Memory. */
class Interpreter
{
  public:
    Interpreter(State &state, mem::Memory &memory)
        : state_(state), mem_(memory)
    {}

    /** Decode at EIP and execute one instruction. */
    StepResult step();

    /**
     * Execute an already-decoded instruction. EIP must equal insn.addr.
     * Exposed so the differential tests can replay specific instructions.
     */
    StepResult execute(const Insn &insn);

    /** Number of instructions retired so far. */
    uint64_t retired() const { return retired_; }

    State &state() { return state_; }
    mem::Memory &memory() { return mem_; }

  private:
    /** Effective address of a MemRef under the current register state. */
    uint32_t effAddr(const MemRef &m) const;

    /** Read an operand (Gpr/Gpr8/Imm/Mem) of @p size bytes. */
    bool readOperand(const Operand &o, unsigned size, uint32_t *val,
                     Fault *fault);

    /** Write an operand (Gpr/Gpr8/Mem) of @p size bytes. */
    bool writeOperand(const Operand &o, unsigned size, uint32_t val,
                      Fault *fault);

    bool load(uint32_t addr, unsigned size, uint64_t *val, Fault *fault);
    bool store(uint32_t addr, unsigned size, uint64_t val, Fault *fault);

    bool push32(uint32_t val, Fault *fault);
    bool pop32(uint32_t *val, Fault *fault);

    /** x87 helpers; return false and fill @p fault on a stack fault. */
    bool fpuCheckRead(uint8_t sti, uint32_t eip, Fault *fault);
    bool fpuCheckPush(uint32_t eip, Fault *fault);

    StepResult execInteger(const Insn &insn);
    StepResult execX87(const Insn &insn);
    StepResult execMmx(const Insn &insn);
    StepResult execSse(const Insn &insn);
    StepResult execString(const Insn &insn);

    State &state_;
    mem::Memory &mem_;
    uint64_t retired_ = 0;
};

} // namespace el::ia32

#endif // EL_IA32_INTERP_HH
