#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files and flag scalar regressions.

Usage:
    bench_diff.py [--tolerance=0.15] <baseline.json> <current.json>

Each bench binary writes a machine-readable report with a "scalars"
object (headline aggregates) and an optional "tolerances" object
(per-scalar relative tolerances recorded by the bench itself via
Report::scalar(key, value, tolerance)). This tool compares the scalars
of a current run against a committed baseline:

  - a scalar missing from the current run is a failure (the bench lost
    a headline number);
  - a scalar whose relative change versus the baseline exceeds its
    tolerance (per-scalar if recorded, else --tolerance) is a failure;
  - new scalars only present in the current run are reported but pass
    (the baseline just predates them).

Exit status: 0 when everything is within tolerance, 1 on any failure,
2 on unreadable/malformed input. CI runs this warn-only (the simulator
is deterministic, but headline numbers legitimately move when the
translator changes; the diff is a visibility tool, not a gate).
"""

import json
import sys


def load(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or "scalars" not in doc:
        print(f"bench_diff: {path}: not a bench report (no scalars)",
              file=sys.stderr)
        sys.exit(2)
    return doc


def relative_change(base, cur):
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return abs(cur - base) / abs(base)


def main(argv):
    default_tol = 0.15
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            default_tol = float(arg[len("--tolerance="):])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            paths.append(arg)
    if len(paths) != 2:
        print("usage: bench_diff.py [--tolerance=N] <baseline.json> "
              "<current.json>", file=sys.stderr)
        return 2

    baseline, current = load(paths[0]), load(paths[1])
    if baseline.get("bench") != current.get("bench"):
        print(f"bench_diff: comparing different benches: "
              f"{baseline.get('bench')} vs {current.get('bench')}",
              file=sys.stderr)
        return 2

    base_scalars = baseline["scalars"]
    cur_scalars = current["scalars"]
    tolerances = baseline.get("tolerances", {})

    failures = 0
    print(f"bench: {baseline.get('bench')}")
    for key in sorted(base_scalars):
        base = base_scalars[key]
        tol = tolerances.get(key, default_tol)
        if key not in cur_scalars:
            print(f"  FAIL {key}: missing from current run "
                  f"(baseline {base:.6g})")
            failures += 1
            continue
        cur = cur_scalars[key]
        change = relative_change(base, cur)
        verdict = "ok  " if change <= tol else "FAIL"
        if change > tol:
            failures += 1
        print(f"  {verdict} {key}: {base:.6g} -> {cur:.6g} "
              f"({change * 100.0:+.1f}% vs tol {tol * 100.0:.0f}%)")
    for key in sorted(set(cur_scalars) - set(base_scalars)):
        print(f"  new  {key}: {cur_scalars[key]:.6g} (not in baseline)")

    if failures:
        print(f"bench_diff: {failures} scalar(s) beyond tolerance")
        return 1
    print("bench_diff: all scalars within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
