/**
 * @file
 * Itanium-like (IPF) target instruction set.
 *
 * The translator emits these instructions into an ipf::CodeCache, and
 * ipf::Machine executes them. The set models the Itanium features the
 * paper's mechanisms depend on:
 *  - full predication (every instruction has a qualifying predicate),
 *  - explicit instruction groups (stop bits) with wide in-order issue,
 *  - control speculation (ld.s defers faults into NaT bits; chk.s
 *    branches to recovery),
 *  - tbit/dep/extr bit manipulation (used by misalignment avoidance),
 *  - a flat 128-register FP file with getf/setf significand moves
 *    (the MMX-on-integer-registers model of section 5),
 *  - parallel (SIMD) integer ops on general registers and parallel
 *    single-precision ops on FP registers.
 *
 * Divide/sqrt are modelled as long-latency pseudo-ops standing for the
 * frcpa + Newton-Raphson sequences a real IPF compiler emits; DESIGN.md
 * documents this substitution.
 */

#ifndef EL_IPF_INSN_HH
#define EL_IPF_INSN_HH

#include <cstdint>
#include <string>

namespace el::ipf
{

/** Execution-unit slot an instruction occupies. */
enum class Slot : uint8_t
{
    M, //!< memory
    I, //!< integer/shift
    F, //!< floating point
    B, //!< branch
    A, //!< ALU: can issue on M or I
};

/** Comparison relations for cmp/fcmp. */
enum class CmpRel : uint8_t
{
    Eq,
    Ne,
    Lt,   //!< signed
    Le,
    Gt,
    Ge,
    Ltu,  //!< unsigned
    Leu,
    Gtu,
    Geu,
    // FP only:
    Unord,
};

/** FP computation precision (the .s/.d completers). */
enum class FpPrec : uint8_t
{
    Single,
    Double,
    Extended,
};

/** Memory-op speculation completer. */
enum class Spec : uint8_t
{
    None,
    S, //!< control-speculative (ld.s): faults defer to NaT
};

/** Why translated code exits back to the translator runtime. */
enum class ExitReason : uint8_t
{
    None = 0,
    LinkMiss,      //!< direct branch target not yet translated
    IndirectMiss,  //!< fast lookup failed; EIP in a GR
    RegisterHot,   //!< use counter hit the heating threshold
    SyscallGate,   //!< guest INT n; vector in imm
    Misaligned,    //!< stage-1/stage-3 misalignment instrumentation hit
    GuardFail,     //!< FP/MMX/SSE speculation guard mismatch
    SmcDetected,   //!< self-modifying code check failed
    Halt,          //!< guest HLT
    Breakpoint,    //!< guest INT3 (trap into the runtime/debugger)
    Resync,        //!< roll back to cold re-execution (speculation failed)
    GuestFault,    //!< precise guest fault; payload = (eip << 8) | kind
};

/** IPF opcodes (a practical subset plus the documented pseudo-ops). */
enum class IpfOp : uint16_t
{
    Invalid = 0,

    // Integer ALU (A-type unless noted).
    Add,      //!< dst = src1 + src2
    Sub,      //!< dst = src1 - src2
    AddImm,   //!< dst = imm + src1   (adds/addl)
    And,
    Or,
    Xor,
    Andcm,    //!< dst = src1 & ~src2
    Shl,      //!< dst = src1 << (src2 & 63)       (I)
    ShlImm,   //!< dst = src1 << imm               (I, dep.z form)
    Shr,      //!< arithmetic right shift           (I)
    ShrU,     //!< logical right shift              (I)
    ShrImm,   //!< arithmetic right shift by imm    (I)
    ShrUImm,  //!< logical right shift by imm       (I)
    Shladd,   //!< dst = (src1 << imm) + src2, imm in 1..4
    Sxt,      //!< sign extend low `size` bytes     (I)
    Zxt,      //!< zero extend low `size` bytes     (I)
    Movl,     //!< dst = 64-bit imm                 (L/X slot)
    Mov,      //!< dst = src1
    MovToBr,  //!< br[dst] = src1                   (I)
    MovFromBr,//!< dst = br[src1]                   (I)
    Cmp,      //!< (dst, dst2) = src1 rel src2      (A)
    CmpImm,   //!< (dst, dst2) = imm rel src2       (A)
    Tbit,     //!< (dst, dst2) = bit imm of src1    (I)
    Dep,      //!< dst = deposit src1[0..len) into src2 at pos (I)
    DepZ,     //!< dst = src1[0..len) << pos, rest zero (I)
    Extr,     //!< dst = sign-extended src1[pos..pos+len) (I)
    ExtrU,    //!< dst = zero-extended src1[pos..pos+len) (I)
    Popcnt,   //!< dst = population count of src1   (I)

    // Parallel integer on GRs (MMX model; size = lane bytes 1/2/4).
    Padd,
    Psub,
    Pmull,    //!< 16-bit lanes, low half of products
    Pcmp,     //!< lanes: all-ones where equal

    // Memory (M).
    Ld,       //!< dst = [src1]; size 1/2/4/8; spec; post_inc via imm
    St,       //!< [src1] = src2; size 1/2/4/8
    ChkS,     //!< if NaT(src1) branch to target (recovery)
    Ldf,      //!< FP load: size 4 (ldfs), 8 (ldfd), 16 (ldfe), 9 (ldf8)
    Stf,      //!< FP store, same size encoding
    Getf,     //!< dst(GR) = significand of src1(FR)
    Setf,     //!< dst(FR) = src1(GR) as significand (bits mode)
    Mf,       //!< memory fence (modelled as a scheduling barrier)

    // Floating point (F).
    Fadd,     //!< dst = src1 + src2 at `prec`
    Fsub,
    Fmpy,
    Fma,      //!< dst = src1 * src2 + src3
    Fms,
    Fnma,     //!< dst = -(src1 * src2) + src3
    Fdiv,     //!< pseudo: frcpa + Newton iterations (long latency)
    Fsqrt,    //!< pseudo: frsqrta + Newton iterations
    Fcmp,     //!< (dst, dst2) = src1 rel src2
    Fneg,     //!< fmerge.ns
    Fabs,     //!< fmerge.s with f0 sign
    FcvtXf,   //!< dst = (fp) signed-int significand of src1
    FcvtFxTrunc, //!< dst.bits = (int64) trunc(src1)
    Fmov,     //!< dst = src1
    // Integer multiply/divide pseudo-ops. Real IPF multiplies via the
    // FP unit (setf + xma + getf) and divides with frcpa + Newton
    // iterations; these stand for those inline macro sequences with
    // equivalent latency (documented in DESIGN.md).
    Xmul,     //!< dst = low 64 bits of src1 * src2
    XDivS,    //!< dst = (int64)src1 / (int64)src2   (src2 != 0)
    XDivU,
    XRemS,
    XRemU,

    // Parallel single-precision on FR bit-pairs (2 x float).
    Fpadd,
    Fpsub,
    Fpmpy,
    Fpdiv,    //!< pseudo, like Fdiv
    Fpcvt,    //!< placeholder conversions use Getf/Setf + scalar ops

    // Branches (B).
    Br,       //!< unconditional/predicated branch to `target`
    BrCall,   //!< branch and link into br[dst]
    BrRet,    //!< branch to br[src1]
    BrInd,    //!< indirect branch to br[src1]
    Exit,     //!< leave translated code; `exit_reason` says why
    Nop,

    NumOps,
};

/** Cycle-attribution bucket for Figures 6/7. */
enum class Bucket : uint8_t
{
    Hot = 0,      //!< optimized hot-trace code
    Cold,         //!< cold translated code
    Overhead,     //!< instrumentation + translator entries/exits
    Native,       //!< untranslated native code (kernel/drivers)
    Idle,         //!< idle/wait time
    NumBuckets,
};

/** Per-instruction metadata used for attribution and state recovery. */
struct InstrMeta
{
    Bucket bucket = Bucket::Cold;
    int32_t block_id = -1;   //!< Owning translation block.
    uint32_t ia32_ip = 0;    //!< Guest IP this instruction derives from.
    int32_t commit_id = -1;  //!< Commit point (hot code), -1 for cold.
};

/** One IPF instruction (plus scheduling and metadata fields). */
struct Instr
{
    IpfOp op = IpfOp::Nop;
    uint8_t qp = 0;        //!< Qualifying predicate (p0 == always true).
    uint8_t dst = 0;       //!< GR/FR/PR/BR index (op-dependent).
    uint8_t dst2 = 0;      //!< Second predicate target of cmp/tbit/fcmp.
    uint8_t src1 = 0;
    uint8_t src2 = 0;
    uint8_t src3 = 0;
    int64_t imm = 0;
    uint8_t size = 0;      //!< Memory size / extend width / lane width.
    uint8_t pos = 0;       //!< dep/extr/tbit bit position.
    uint8_t len = 0;       //!< dep/extr field length.
    CmpRel crel = CmpRel::Eq;
    FpPrec prec = FpPrec::Extended;
    Spec spec = Spec::None;
    bool stop = false;     //!< Instruction-group stop bit after this op.

    int64_t target = -1;   //!< Branch/chk target: code-cache index.
    ExitReason exit_reason = ExitReason::None;
    int64_t exit_payload = 0; //!< Reason-specific (e.g. target EIP).

    InstrMeta meta;

    /** Slot type, derived from the opcode. */
    Slot slotKind() const;

    /** Human-readable rendering for traces and tests. */
    std::string toString() const;
};

/** Printable opcode mnemonic. */
const char *ipfOpName(IpfOp op);

/** Printable bucket name. */
const char *bucketName(Bucket bucket);

/** True if the op writes a general register. */
bool writesGr(const Instr &i);

/** True if the op writes an FP register. */
bool writesFr(const Instr &i);

/** True if the op writes predicate registers. */
bool writesPr(const Instr &i);

} // namespace el::ipf

#endif // EL_IPF_INSN_HH
