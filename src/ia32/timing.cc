#include "ia32/timing.hh"

#include "support/bitfield.hh"

namespace el::ia32
{

StepResult
DirectRunner::step()
{
    State pre = interp_.state(); // cheap copy; used for address math
    StepResult res = interp_.step();
    if (res.kind != StepKind::Fault)
        charge(res.insn, pre);
    return res;
}

void
DirectRunner::charge(const Insn &insn, const State &pre)
{
    cycles_ += cfg_.base_cpi;
    const OpInfo &info = opInfo(insn.op);

    auto eff = [&](const MemRef &m) {
        uint32_t addr = static_cast<uint32_t>(m.disp);
        if (m.has_base)
            addr += pre.gpr[m.base];
        if (m.has_index)
            addr += pre.gpr[m.index] * m.scale;
        return addr;
    };

    auto mem_cost = [&](uint32_t addr, unsigned size) {
        unsigned lat = cache_.access(addr, size);
        cycles_ += lat > 1 ? lat - 1 : 0; // first cycle overlaps issue
        if (!isAligned(addr, size ? size : 1))
            cycles_ += cfg_.misalign_extra;
    };

    // Explicit memory operands.
    unsigned size = insn.op_size;
    if (insn.dst.isMem())
        mem_cost(eff(insn.dst.mem), size);
    if (insn.src.isMem())
        mem_cost(eff(insn.src.mem), size);

    // Implicit stack accesses.
    switch (insn.op) {
      case Op::Push:
      case Op::Call:
      case Op::CallInd:
        mem_cost(pre.gpr[RegEsp] - 4, 4);
        break;
      case Op::Pop:
      case Op::Ret:
        mem_cost(pre.gpr[RegEsp], 4);
        break;
      case Op::Leave:
        mem_cost(pre.gpr[RegEbp], 4);
        break;
      case Op::Movs:
      case Op::Stos:
      case Op::Lods: {
        // Charge the whole (possibly REP) operation.
        uint64_t count = insn.rep ? pre.gpr[RegEcx] : 1;
        for (uint64_t i = 0; i < count; ++i) {
            uint32_t off = static_cast<uint32_t>(i * insn.op_size);
            if (insn.op != Op::Stos)
                mem_cost(pre.gpr[RegEsi] + off, insn.op_size);
            if (insn.op != Op::Lods)
                mem_cost(pre.gpr[RegEdi] + off, insn.op_size);
            cycles_ += 0.5; // string-unit throughput
        }
        break;
      }
      default:
        break;
    }

    // Execution latency classes.
    switch (insn.op) {
      case Op::Imul2:
      case Op::Mul1:
      case Op::Imul1:
        cycles_ += cfg_.mul_cycles;
        break;
      case Op::Div:
      case Op::Idiv:
        cycles_ += cfg_.div_cycles;
        break;
      case Op::Fdiv:
      case Op::Fdivr:
      case Op::Fsqrt:
      case Op::Divps:
      case Op::Divss:
      case Op::Sqrtss:
        cycles_ += cfg_.fdiv_cycles;
        break;
      default:
        if (info.is_fp || info.is_sse)
            cycles_ += cfg_.fp_cycles * 0.5; // pipelined FP
        break;
    }

    // Branch prediction model: deterministic pseudo-random outcomes.
    if (info.is_branch) {
        branch_seed_ = branch_seed_ * 6364136223846793005ULL + 1442695040888963407ULL;
        double u = static_cast<double>(branch_seed_ >> 11) * 0x1.0p-53;
        double miss_rate = 0.0;
        if (insn.op == Op::Jcc)
            miss_rate = cfg_.cond_miss_rate;
        else if (insn.op == Op::JmpInd || insn.op == Op::CallInd ||
                 insn.op == Op::Ret) {
            miss_rate = cfg_.indirect_miss_rate;
        }
        if (u < miss_rate)
            cycles_ += cfg_.branch_miss_cycles;
    }
}

} // namespace el::ia32
