#include "ia32/state.hh"

#include <cmath>

#include "support/strfmt.hh"

namespace el::ia32
{

std::string
State::toString() const
{
    std::string s;
    static const char *names[] = {"eax", "ecx", "edx", "ebx",
                                  "esp", "ebp", "esi", "edi"};
    for (int i = 0; i < 8; ++i)
        s += strfmt("%s=%08x ", names[i], gpr[i]);
    s += strfmt("eip=%08x eflags=%08x [%c%c%c%c%c%c]", eip, eflags,
                flag(FlagCf) ? 'C' : '-', flag(FlagPf) ? 'P' : '-',
                flag(FlagAf) ? 'A' : '-', flag(FlagZf) ? 'Z' : '-',
                flag(FlagSf) ? 'S' : '-', flag(FlagOf) ? 'O' : '-');
    s += strfmt(" fpu.top=%u", fpu.top);
    return s;
}

bool
State::equalsArch(const State &o, std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    for (int i = 0; i < 8; ++i) {
        if (gpr[i] != o.gpr[i]) {
            return fail(strfmt("gpr[%d]: %08x vs %08x", i, gpr[i],
                               o.gpr[i]));
        }
    }
    if (eip != o.eip)
        return fail(strfmt("eip: %08x vs %08x", eip, o.eip));
    if ((eflags & FlagsArith) != (o.eflags & FlagsArith)) {
        return fail(strfmt("eflags: %08x vs %08x", eflags & FlagsArith,
                           o.eflags & FlagsArith));
    }
    if (fpu.top != o.fpu.top)
        return fail(strfmt("fpu.top: %u vs %u", fpu.top, o.fpu.top));
    for (int i = 0; i < 8; ++i) {
        if (fpu.tag[i] != o.fpu.tag[i]) {
            return fail(strfmt("fpu.tag[%d]: %u vs %u", i,
                               static_cast<unsigned>(fpu.tag[i]),
                               static_cast<unsigned>(o.fpu.tag[i])));
        }
        if (fpu.tag[i] == FpTag::Valid) {
            long double a = fpu.st[i];
            long double b = o.fpu.st[i];
            bool equal = (a == b) || (std::isnan(static_cast<double>(a)) &&
                                      std::isnan(static_cast<double>(b)));
            if (!equal) {
                return fail(strfmt("fpu.st[%d]: %Lg vs %Lg", i, a, b));
            }
        }
    }
    for (int i = 0; i < 8; ++i) {
        if (!(xmm[i] == o.xmm[i]))
            return fail(strfmt("xmm[%d] differs", i));
    }
    return true;
}

} // namespace el::ia32
