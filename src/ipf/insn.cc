#include "ipf/insn.hh"

#include "support/logging.hh"
#include "support/strfmt.hh"

namespace el::ipf
{

Slot
Instr::slotKind() const
{
    switch (op) {
      case IpfOp::Add:
      case IpfOp::Sub:
      case IpfOp::AddImm:
      case IpfOp::And:
      case IpfOp::Or:
      case IpfOp::Xor:
      case IpfOp::Andcm:
      case IpfOp::Shladd:
      case IpfOp::Cmp:
      case IpfOp::CmpImm:
      case IpfOp::Mov:
      case IpfOp::Padd:
      case IpfOp::Psub:
        return Slot::A;
      case IpfOp::Shl:
      case IpfOp::ShlImm:
      case IpfOp::Shr:
      case IpfOp::ShrU:
      case IpfOp::ShrImm:
      case IpfOp::ShrUImm:
      case IpfOp::Sxt:
      case IpfOp::Zxt:
      case IpfOp::Tbit:
      case IpfOp::Dep:
      case IpfOp::DepZ:
      case IpfOp::Extr:
      case IpfOp::ExtrU:
      case IpfOp::Popcnt:
      case IpfOp::MovToBr:
      case IpfOp::MovFromBr:
      case IpfOp::Pmull:
      case IpfOp::Pcmp:
        return Slot::I;
      case IpfOp::Movl:
        return Slot::I; // occupies L+X (charged as 2 slots by the timer)
      case IpfOp::Ld:
      case IpfOp::St:
      case IpfOp::ChkS:
      case IpfOp::Ldf:
      case IpfOp::Stf:
      case IpfOp::Getf:
      case IpfOp::Setf:
      case IpfOp::Mf:
        return Slot::M;
      case IpfOp::Xmul:
      case IpfOp::XDivS:
      case IpfOp::XDivU:
      case IpfOp::XRemS:
      case IpfOp::XRemU:
      case IpfOp::Fadd:
      case IpfOp::Fsub:
      case IpfOp::Fmpy:
      case IpfOp::Fma:
      case IpfOp::Fms:
      case IpfOp::Fnma:
      case IpfOp::Fdiv:
      case IpfOp::Fsqrt:
      case IpfOp::Fcmp:
      case IpfOp::Fneg:
      case IpfOp::Fabs:
      case IpfOp::FcvtXf:
      case IpfOp::FcvtFxTrunc:
      case IpfOp::Fmov:
      case IpfOp::Fpadd:
      case IpfOp::Fpsub:
      case IpfOp::Fpmpy:
      case IpfOp::Fpdiv:
      case IpfOp::Fpcvt:
        return Slot::F;
      case IpfOp::Br:
      case IpfOp::BrCall:
      case IpfOp::BrRet:
      case IpfOp::BrInd:
      case IpfOp::Exit:
        return Slot::B;
      case IpfOp::Nop:
        return Slot::A;
      default:
        el_panic("slotKind: bad op %u", static_cast<unsigned>(op));
    }
}

const char *
ipfOpName(IpfOp op)
{
    switch (op) {
      case IpfOp::Invalid: return "(invalid)";
      case IpfOp::Add: return "add";
      case IpfOp::Sub: return "sub";
      case IpfOp::AddImm: return "adds";
      case IpfOp::And: return "and";
      case IpfOp::Or: return "or";
      case IpfOp::Xor: return "xor";
      case IpfOp::Andcm: return "andcm";
      case IpfOp::Shl: return "shl";
      case IpfOp::ShlImm: return "shl";
      case IpfOp::Shr: return "shr";
      case IpfOp::ShrU: return "shr.u";
      case IpfOp::ShrImm: return "shr";
      case IpfOp::ShrUImm: return "shr.u";
      case IpfOp::Shladd: return "shladd";
      case IpfOp::Sxt: return "sxt";
      case IpfOp::Zxt: return "zxt";
      case IpfOp::Movl: return "movl";
      case IpfOp::Mov: return "mov";
      case IpfOp::MovToBr: return "mov.b";
      case IpfOp::MovFromBr: return "mov.fb";
      case IpfOp::Cmp: return "cmp";
      case IpfOp::CmpImm: return "cmp.i";
      case IpfOp::Tbit: return "tbit";
      case IpfOp::Dep: return "dep";
      case IpfOp::DepZ: return "dep.z";
      case IpfOp::Extr: return "extr";
      case IpfOp::ExtrU: return "extr.u";
      case IpfOp::Popcnt: return "popcnt";
      case IpfOp::Padd: return "padd";
      case IpfOp::Psub: return "psub";
      case IpfOp::Pmull: return "pmpyshr2";
      case IpfOp::Pcmp: return "pcmp";
      case IpfOp::Ld: return "ld";
      case IpfOp::St: return "st";
      case IpfOp::ChkS: return "chk.s";
      case IpfOp::Ldf: return "ldf";
      case IpfOp::Stf: return "stf";
      case IpfOp::Getf: return "getf.sig";
      case IpfOp::Setf: return "setf.sig";
      case IpfOp::Mf: return "mf";
      case IpfOp::Xmul: return "xmul*";
      case IpfOp::XDivS: return "xdiv.s*";
      case IpfOp::XDivU: return "xdiv.u*";
      case IpfOp::XRemS: return "xrem.s*";
      case IpfOp::XRemU: return "xrem.u*";
      case IpfOp::Fadd: return "fadd";
      case IpfOp::Fsub: return "fsub";
      case IpfOp::Fmpy: return "fmpy";
      case IpfOp::Fma: return "fma";
      case IpfOp::Fms: return "fms";
      case IpfOp::Fnma: return "fnma";
      case IpfOp::Fdiv: return "fdiv*";
      case IpfOp::Fsqrt: return "fsqrt*";
      case IpfOp::Fcmp: return "fcmp";
      case IpfOp::Fneg: return "fneg";
      case IpfOp::Fabs: return "fabs";
      case IpfOp::FcvtXf: return "fcvt.xf";
      case IpfOp::FcvtFxTrunc: return "fcvt.fx.trunc";
      case IpfOp::Fmov: return "fmov";
      case IpfOp::Fpadd: return "fpadd";
      case IpfOp::Fpsub: return "fpsub";
      case IpfOp::Fpmpy: return "fpmpy";
      case IpfOp::Fpdiv: return "fpdiv*";
      case IpfOp::Fpcvt: return "fpcvt";
      case IpfOp::Br: return "br";
      case IpfOp::BrCall: return "br.call";
      case IpfOp::BrRet: return "br.ret";
      case IpfOp::BrInd: return "br.ind";
      case IpfOp::Exit: return "exit";
      case IpfOp::Nop: return "nop";
      default: return "?";
    }
}

const char *
bucketName(Bucket bucket)
{
    switch (bucket) {
      case Bucket::Hot: return "hot";
      case Bucket::Cold: return "cold";
      case Bucket::Overhead: return "overhead";
      case Bucket::Native: return "native";
      case Bucket::Idle: return "idle";
      default: return "?";
    }
}

bool
writesGr(const Instr &i)
{
    switch (i.op) {
      case IpfOp::Add:
      case IpfOp::Sub:
      case IpfOp::AddImm:
      case IpfOp::And:
      case IpfOp::Or:
      case IpfOp::Xor:
      case IpfOp::Andcm:
      case IpfOp::Shl:
      case IpfOp::ShlImm:
      case IpfOp::Shr:
      case IpfOp::ShrU:
      case IpfOp::ShrImm:
      case IpfOp::ShrUImm:
      case IpfOp::Shladd:
      case IpfOp::Sxt:
      case IpfOp::Zxt:
      case IpfOp::Movl:
      case IpfOp::Mov:
      case IpfOp::MovFromBr:
      case IpfOp::Dep:
      case IpfOp::DepZ:
      case IpfOp::Extr:
      case IpfOp::ExtrU:
      case IpfOp::Popcnt:
      case IpfOp::Padd:
      case IpfOp::Psub:
      case IpfOp::Pmull:
      case IpfOp::Pcmp:
      case IpfOp::Ld:
      case IpfOp::Getf:
      case IpfOp::Xmul:
      case IpfOp::XDivS:
      case IpfOp::XDivU:
      case IpfOp::XRemS:
      case IpfOp::XRemU:
        return true;
      default:
        return false;
    }
}

bool
writesFr(const Instr &i)
{
    switch (i.op) {
      case IpfOp::Ldf:
      case IpfOp::Setf:
      case IpfOp::Fadd:
      case IpfOp::Fsub:
      case IpfOp::Fmpy:
      case IpfOp::Fma:
      case IpfOp::Fms:
      case IpfOp::Fnma:
      case IpfOp::Fdiv:
      case IpfOp::Fsqrt:
      case IpfOp::Fneg:
      case IpfOp::Fabs:
      case IpfOp::FcvtXf:
      case IpfOp::FcvtFxTrunc:
      case IpfOp::Fmov:
      case IpfOp::Fpadd:
      case IpfOp::Fpsub:
      case IpfOp::Fpmpy:
      case IpfOp::Fpdiv:
      case IpfOp::Fpcvt:
        return true;
      default:
        return false;
    }
}

bool
writesPr(const Instr &i)
{
    switch (i.op) {
      case IpfOp::Cmp:
      case IpfOp::CmpImm:
      case IpfOp::Tbit:
      case IpfOp::Fcmp:
        return true;
      default:
        return false;
    }
}

std::string
Instr::toString() const
{
    std::string s;
    if (qp != 0)
        s += strfmt("(p%u) ", qp);
    s += ipfOpName(op);
    switch (op) {
      case IpfOp::Ld:
      case IpfOp::St:
        s += strfmt("%u", size);
        if (spec == Spec::S)
            s += ".s";
        break;
      case IpfOp::Ldf:
      case IpfOp::Stf:
        s += size == 4 ? "s" : size == 8 ? "d" : size == 9 ? "8" : "e";
        break;
      default:
        break;
    }
    s += strfmt(" d=%u,%u s=%u,%u,%u imm=%lld", dst, dst2, src1, src2,
                src3, static_cast<long long>(imm));
    if (target >= 0)
        s += strfmt(" ->%lld", static_cast<long long>(target));
    if (exit_reason != ExitReason::None)
        s += strfmt(" exit=%u", static_cast<unsigned>(exit_reason));
    if (stop)
        s += " ;;";
    return s;
}

} // namespace el::ipf
