#include "ia32/assembler.hh"

#include "support/logging.hh"

namespace el::ia32
{

Label
Assembler::label()
{
    Label l;
    l.id = static_cast<int>(label_pos_.size());
    label_pos_.push_back(-1);
    return l;
}

void
Assembler::bind(Label l)
{
    el_assert(l.valid() && label_pos_[l.id] == -1, "label rebound");
    label_pos_[l.id] = static_cast<int64_t>(buf_.size());
}

std::vector<uint8_t>
Assembler::finish()
{
    el_assert(!finished_, "finish() called twice");
    finished_ = true;
    for (const Fixup &f : fixups_) {
        int64_t pos = label_pos_[f.label];
        el_assert(pos >= 0, "unbound label %d", f.label);
        // rel32 is relative to the end of the displacement field.
        int64_t rel = pos - static_cast<int64_t>(f.offset) - 4;
        uint32_t v = static_cast<uint32_t>(rel);
        for (int i = 0; i < 4; ++i)
            buf_[f.offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
    return buf_;
}

void
Assembler::emit16(uint16_t v)
{
    emit8(static_cast<uint8_t>(v));
    emit8(static_cast<uint8_t>(v >> 8));
}

void
Assembler::emit32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        emit8(static_cast<uint8_t>(v >> (8 * i)));
}

void
Assembler::emitModRmReg(unsigned reg, unsigned rm)
{
    emit8(static_cast<uint8_t>(0xc0 | ((reg & 7) << 3) | (rm & 7)));
}

void
Assembler::emitModRm(unsigned reg, const MemRef &m)
{
    // Pick mod and whether a SIB byte is needed.
    bool need_sib = m.has_index || (m.has_base && m.base == RegEsp);
    uint8_t mod;
    bool disp8 = false, disp32 = false;
    if (!m.has_base) {
        mod = 0;
        disp32 = true;
    } else if (m.disp == 0 && m.base != RegEbp) {
        mod = 0;
    } else if (m.disp >= -128 && m.disp <= 127) {
        mod = 1;
        disp8 = true;
    } else {
        mod = 2;
        disp32 = true;
    }

    if (!need_sib && !m.has_base) {
        // [disp32] direct.
        emit8(static_cast<uint8_t>(((reg & 7) << 3) | 5));
        emit32(static_cast<uint32_t>(m.disp));
        return;
    }

    if (!need_sib) {
        emit8(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) |
                                   (m.base & 7)));
    } else {
        emit8(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | 4));
        uint8_t ss = m.scale == 8 ? 3 : m.scale == 4 ? 2
                   : m.scale == 2 ? 1 : 0;
        uint8_t index = m.has_index ? (m.index & 7) : 4;
        el_assert(!(m.has_index && m.index == RegEsp),
                  "esp cannot be an index register");
        uint8_t base;
        if (m.has_base) {
            base = m.base & 7;
        } else {
            base = 5;
            mod = 0;
            disp32 = true;
            disp8 = false;
            // Rewrite the ModRM byte we just emitted (mod is now 0).
            buf_.back() = static_cast<uint8_t>((0u << 6) |
                                               ((reg & 7) << 3) | 4);
        }
        emit8(static_cast<uint8_t>((ss << 6) | (index << 3) | base));
    }

    if (disp8)
        emit8(static_cast<uint8_t>(m.disp));
    else if (disp32)
        emit32(static_cast<uint32_t>(m.disp));
}

void
Assembler::emitRel32To(Label target)
{
    fixups_.push_back({buf_.size(), target.id});
    emit32(0);
}

uint8_t
Assembler::aluIdx(Op op) const
{
    switch (op) {
      case Op::Add:
        return 0;
      case Op::Or:
        return 1;
      case Op::Adc:
        return 2;
      case Op::Sbb:
        return 3;
      case Op::And:
        return 4;
      case Op::Sub:
        return 5;
      case Op::Xor:
        return 6;
      case Op::Cmp:
        return 7;
      default:
        el_panic("not an ALU op: %s", opName(op));
    }
}

uint8_t
Assembler::shiftIdx(Op op) const
{
    switch (op) {
      case Op::Rol:
        return 0;
      case Op::Ror:
        return 1;
      case Op::Shl:
        return 4;
      case Op::Shr:
        return 5;
      case Op::Sar:
        return 7;
      default:
        el_panic("not a shift op: %s", opName(op));
    }
}

void
Assembler::bytes(std::initializer_list<uint8_t> bs)
{
    for (uint8_t b : bs)
        emit8(b);
}

// ----- data movement -----------------------------------------------------

void
Assembler::movRI(Reg r, uint32_t imm)
{
    emit8(static_cast<uint8_t>(0xb8 + (r & 7)));
    emit32(imm);
}

void
Assembler::movRR(Reg d, Reg s)
{
    emit8(0x89);
    emitModRmReg(s, d);
}

void
Assembler::movRM(Reg d, const MemRef &m)
{
    emit8(0x8b);
    emitModRm(d, m);
}

void
Assembler::movMR(const MemRef &m, Reg s)
{
    emit8(0x89);
    emitModRm(s, m);
}

void
Assembler::movMI(const MemRef &m, uint32_t imm)
{
    emit8(0xc7);
    emitModRm(0, m);
    emit32(imm);
}

void
Assembler::movRI8(Reg8 r, uint8_t imm)
{
    emit8(static_cast<uint8_t>(0xb0 + (r & 7)));
    emit8(imm);
}

void
Assembler::movRM8(Reg8 d, const MemRef &m)
{
    emit8(0x8a);
    emitModRm(d, m);
}

void
Assembler::movMR8(const MemRef &m, Reg8 s)
{
    emit8(0x88);
    emitModRm(s, m);
}

void
Assembler::movMI8(const MemRef &m, uint8_t imm)
{
    emit8(0xc6);
    emitModRm(0, m);
    emit8(imm);
}

void
Assembler::movRM16(Reg d, const MemRef &m)
{
    emit8(0x66);
    emit8(0x8b);
    emitModRm(d, m);
}

void
Assembler::movMR16(const MemRef &m, Reg s)
{
    emit8(0x66);
    emit8(0x89);
    emitModRm(s, m);
}

void
Assembler::movzxRM8(Reg d, const MemRef &m)
{
    bytes({0x0f, 0xb6});
    emitModRm(d, m);
}

void
Assembler::movzxRR8(Reg d, Reg8 s)
{
    bytes({0x0f, 0xb6});
    emitModRmReg(d, s);
}

void
Assembler::movzxRM16(Reg d, const MemRef &m)
{
    bytes({0x0f, 0xb7});
    emitModRm(d, m);
}

void
Assembler::movsxRM8(Reg d, const MemRef &m)
{
    bytes({0x0f, 0xbe});
    emitModRm(d, m);
}

void
Assembler::movsxRM16(Reg d, const MemRef &m)
{
    bytes({0x0f, 0xbf});
    emitModRm(d, m);
}

void
Assembler::lea(Reg d, const MemRef &m)
{
    emit8(0x8d);
    emitModRm(d, m);
}

void
Assembler::xchgRR(Reg a, Reg b)
{
    emit8(0x87);
    emitModRmReg(b, a);
}

void
Assembler::pushR(Reg r)
{
    emit8(static_cast<uint8_t>(0x50 + (r & 7)));
}

void
Assembler::pushI(int32_t imm)
{
    if (imm >= -128 && imm <= 127) {
        emit8(0x6a);
        emit8(static_cast<uint8_t>(imm));
    } else {
        emit8(0x68);
        emit32(static_cast<uint32_t>(imm));
    }
}

void
Assembler::pushM(const MemRef &m)
{
    emit8(0xff);
    emitModRm(6, m);
}

void
Assembler::popR(Reg r)
{
    emit8(static_cast<uint8_t>(0x58 + (r & 7)));
}

void
Assembler::cdq()
{
    emit8(0x99);
}

void
Assembler::sahf()
{
    emit8(0x9e);
}

void
Assembler::lahf()
{
    emit8(0x9f);
}

void
Assembler::leave()
{
    emit8(0xc9);
}

// ----- integer ALU ---------------------------------------------------------

void
Assembler::aluRR(Op op, Reg d, Reg s)
{
    emit8(static_cast<uint8_t>((aluIdx(op) << 3) | 0x01));
    emitModRmReg(s, d);
}

void
Assembler::aluRI(Op op, Reg d, int32_t imm)
{
    if (imm >= -128 && imm <= 127) {
        emit8(0x83);
        emitModRmReg(aluIdx(op), d);
        emit8(static_cast<uint8_t>(imm));
    } else {
        emit8(0x81);
        emitModRmReg(aluIdx(op), d);
        emit32(static_cast<uint32_t>(imm));
    }
}

void
Assembler::aluRM(Op op, Reg d, const MemRef &m)
{
    emit8(static_cast<uint8_t>((aluIdx(op) << 3) | 0x03));
    emitModRm(d, m);
}

void
Assembler::aluMR(Op op, const MemRef &m, Reg s)
{
    emit8(static_cast<uint8_t>((aluIdx(op) << 3) | 0x01));
    emitModRm(s, m);
}

void
Assembler::aluMI(Op op, const MemRef &m, int32_t imm)
{
    if (imm >= -128 && imm <= 127) {
        emit8(0x83);
        emitModRm(aluIdx(op), m);
        emit8(static_cast<uint8_t>(imm));
    } else {
        emit8(0x81);
        emitModRm(aluIdx(op), m);
        emit32(static_cast<uint32_t>(imm));
    }
}

void
Assembler::aluRR8(Op op, Reg8 d, Reg8 s)
{
    emit8(static_cast<uint8_t>((aluIdx(op) << 3) | 0x00));
    emitModRmReg(s, d);
}

void
Assembler::aluRI8(Op op, Reg8 d, uint8_t imm)
{
    emit8(0x80);
    emitModRmReg(aluIdx(op), d);
    emit8(imm);
}

void
Assembler::testRR(Reg a, Reg b)
{
    emit8(0x85);
    emitModRmReg(b, a);
}

void
Assembler::testRI(Reg a, uint32_t imm)
{
    emit8(0xf7);
    emitModRmReg(0, a);
    emit32(imm);
}

void
Assembler::incR(Reg r)
{
    emit8(static_cast<uint8_t>(0x40 + (r & 7)));
}

void
Assembler::decR(Reg r)
{
    emit8(static_cast<uint8_t>(0x48 + (r & 7)));
}

void
Assembler::incM(const MemRef &m)
{
    emit8(0xff);
    emitModRm(0, m);
}

void
Assembler::decM(const MemRef &m)
{
    emit8(0xff);
    emitModRm(1, m);
}

void
Assembler::negR(Reg r)
{
    emit8(0xf7);
    emitModRmReg(3, r);
}

void
Assembler::notR(Reg r)
{
    emit8(0xf7);
    emitModRmReg(2, r);
}

void
Assembler::imulRR(Reg d, Reg s)
{
    bytes({0x0f, 0xaf});
    emitModRmReg(d, s);
}

void
Assembler::imulRM(Reg d, const MemRef &m)
{
    bytes({0x0f, 0xaf});
    emitModRm(d, m);
}

void
Assembler::mulR(Reg s)
{
    emit8(0xf7);
    emitModRmReg(4, s);
}

void
Assembler::imul1R(Reg s)
{
    emit8(0xf7);
    emitModRmReg(5, s);
}

void
Assembler::divR(Reg s)
{
    emit8(0xf7);
    emitModRmReg(6, s);
}

void
Assembler::idivR(Reg s)
{
    emit8(0xf7);
    emitModRmReg(7, s);
}

void
Assembler::shiftRI(Op op, Reg r, uint8_t imm)
{
    if (imm == 1) {
        emit8(0xd1);
        emitModRmReg(shiftIdx(op), r);
    } else {
        emit8(0xc1);
        emitModRmReg(shiftIdx(op), r);
        emit8(imm);
    }
}

void
Assembler::shiftRCl(Op op, Reg r)
{
    emit8(0xd3);
    emitModRmReg(shiftIdx(op), r);
}

// ----- control flow ----------------------------------------------------

void
Assembler::jcc(Cond cond, Label target)
{
    emit8(0x0f);
    emit8(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(cond)));
    emitRel32To(target);
}

void
Assembler::jmp(Label target)
{
    emit8(0xe9);
    emitRel32To(target);
}

void
Assembler::jmpAbs(uint32_t target)
{
    emit8(0xe9);
    uint32_t rel = target - (pc() + 4);
    emit32(rel);
}

void
Assembler::jmpR(Reg r)
{
    emit8(0xff);
    emitModRmReg(4, r);
}

void
Assembler::jmpM(const MemRef &m)
{
    emit8(0xff);
    emitModRm(4, m);
}

void
Assembler::call(Label target)
{
    emit8(0xe8);
    emitRel32To(target);
}

void
Assembler::callAbs(uint32_t target)
{
    emit8(0xe8);
    uint32_t rel = target - (pc() + 4);
    emit32(rel);
}

void
Assembler::callR(Reg r)
{
    emit8(0xff);
    emitModRmReg(2, r);
}

void
Assembler::ret(uint16_t pop_bytes)
{
    if (pop_bytes == 0) {
        emit8(0xc3);
    } else {
        emit8(0xc2);
        emit16(pop_bytes);
    }
}

void
Assembler::setcc(Cond cond, Reg8 r)
{
    emit8(0x0f);
    emit8(static_cast<uint8_t>(0x90 | static_cast<uint8_t>(cond)));
    emitModRmReg(0, r);
}

void
Assembler::cmovcc(Cond cond, Reg d, Reg s)
{
    emit8(0x0f);
    emit8(static_cast<uint8_t>(0x40 | static_cast<uint8_t>(cond)));
    emitModRmReg(d, s);
}

// ----- strings -----------------------------------------------------------

void
Assembler::repMovsd()
{
    bytes({0xf3, 0xa5});
}

void
Assembler::repStosd()
{
    bytes({0xf3, 0xab});
}

void
Assembler::repMovsb()
{
    bytes({0xf3, 0xa4});
}

void
Assembler::repStosb()
{
    bytes({0xf3, 0xaa});
}

void
Assembler::movsd_str()
{
    emit8(0xa5);
}

void
Assembler::stosd_str()
{
    emit8(0xab);
}

void
Assembler::cld()
{
    emit8(0xfc);
}

// ----- system -------------------------------------------------------------

void
Assembler::intN(uint8_t vector)
{
    emit8(0xcd);
    emit8(vector);
}

void
Assembler::int3()
{
    emit8(0xcc);
}

void
Assembler::nop()
{
    emit8(0x90);
}

void
Assembler::hlt()
{
    emit8(0xf4);
}

void
Assembler::ud2()
{
    bytes({0x0f, 0x0b});
}

// ----- x87 ------------------------------------------------------------------

void
Assembler::fldM32(const MemRef &m)
{
    emit8(0xd9);
    emitModRm(0, m);
}

void
Assembler::fldM64(const MemRef &m)
{
    emit8(0xdd);
    emitModRm(0, m);
}

void
Assembler::fldSt(uint8_t i)
{
    emit8(0xd9);
    emit8(static_cast<uint8_t>(0xc0 + (i & 7)));
}

void
Assembler::fildM32(const MemRef &m)
{
    emit8(0xdb);
    emitModRm(0, m);
}

void
Assembler::fstM32(const MemRef &m, bool pop)
{
    emit8(0xd9);
    emitModRm(pop ? 3 : 2, m);
}

void
Assembler::fstM64(const MemRef &m, bool pop)
{
    emit8(0xdd);
    emitModRm(pop ? 3 : 2, m);
}

void
Assembler::fstSt(uint8_t i, bool pop)
{
    emit8(0xdd);
    emit8(static_cast<uint8_t>((pop ? 0xd8 : 0xd0) + (i & 7)));
}

void
Assembler::fistpM32(const MemRef &m)
{
    emit8(0xdb);
    emitModRm(3, m);
}

void
Assembler::fld1()
{
    bytes({0xd9, 0xe8});
}

void
Assembler::fldz()
{
    bytes({0xd9, 0xee});
}

namespace
{

/** Group selector byte for the register-form x87 arithmetic ops. */
uint8_t
x87Group(Op op, bool reversed_bank)
{
    // In the D8 bank: fsub=E0, fsubr=E8, fdiv=F0, fdivr=F8.
    // In the DC/DE banks the subtract/divide pairs swap places.
    switch (op) {
      case Op::Fadd:
        return 0xc0;
      case Op::Fmul:
        return 0xc8;
      case Op::Fsub:
        return reversed_bank ? 0xe8 : 0xe0;
      case Op::Fsubr:
        return reversed_bank ? 0xe0 : 0xe8;
      case Op::Fdiv:
        return reversed_bank ? 0xf8 : 0xf0;
      case Op::Fdivr:
        return reversed_bank ? 0xf0 : 0xf8;
      default:
        el_panic("not an x87 arith op: %s", opName(op));
    }
}

uint8_t
x87MemSel(Op op)
{
    switch (op) {
      case Op::Fadd:
        return 0;
      case Op::Fmul:
        return 1;
      case Op::Fsub:
        return 4;
      case Op::Fsubr:
        return 5;
      case Op::Fdiv:
        return 6;
      case Op::Fdivr:
        return 7;
      default:
        el_panic("not an x87 arith op: %s", opName(op));
    }
}

} // namespace

void
Assembler::farithM32(Op op, const MemRef &m)
{
    emit8(0xd8);
    emitModRm(x87MemSel(op), m);
}

void
Assembler::farithM64(Op op, const MemRef &m)
{
    emit8(0xdc);
    emitModRm(x87MemSel(op), m);
}

void
Assembler::farithSt0Sti(Op op, uint8_t i)
{
    emit8(0xd8);
    emit8(static_cast<uint8_t>(x87Group(op, false) + (i & 7)));
}

void
Assembler::farithStiSt0(Op op, uint8_t i, bool pop)
{
    emit8(pop ? 0xde : 0xdc);
    emit8(static_cast<uint8_t>(x87Group(op, true) + (i & 7)));
}

void
Assembler::fxch(uint8_t i)
{
    emit8(0xd9);
    emit8(static_cast<uint8_t>(0xc8 + (i & 7)));
}

void
Assembler::fchs()
{
    bytes({0xd9, 0xe0});
}

void
Assembler::fabs_()
{
    bytes({0xd9, 0xe1});
}

void
Assembler::fsqrt()
{
    bytes({0xd9, 0xfa});
}

void
Assembler::fcomi(uint8_t i, bool pop)
{
    emit8(pop ? 0xdf : 0xdb);
    emit8(static_cast<uint8_t>(0xf0 + (i & 7)));
}

void
Assembler::fnstswAx()
{
    bytes({0xdf, 0xe0});
}

void
Assembler::fninit()
{
    bytes({0xdb, 0xe3});
}

// ----- MMX ---------------------------------------------------------------

void
Assembler::movdMmR(uint8_t mm, Reg r)
{
    bytes({0x0f, 0x6e});
    emitModRmReg(mm, r);
}

void
Assembler::movdRMm(Reg r, uint8_t mm)
{
    bytes({0x0f, 0x7e});
    emitModRmReg(mm, r);
}

void
Assembler::movqMmM(uint8_t mm, const MemRef &m)
{
    bytes({0x0f, 0x6f});
    emitModRm(mm, m);
}

void
Assembler::movqMMm(const MemRef &m, uint8_t mm)
{
    bytes({0x0f, 0x7f});
    emitModRm(mm, m);
}

void
Assembler::movqMmMm(uint8_t d, uint8_t s)
{
    bytes({0x0f, 0x6f});
    emitModRmReg(d, s);
}

namespace
{

uint8_t
pArithByte(Op op)
{
    switch (op) {
      case Op::Paddb:
        return 0xfc;
      case Op::Paddw:
        return 0xfd;
      case Op::Paddd:
      case Op::PadddX:
        return 0xfe;
      case Op::Psubb:
        return 0xf8;
      case Op::Psubw:
        return 0xf9;
      case Op::Psubd:
        return 0xfa;
      case Op::Pand:
        return 0xdb;
      case Op::Por:
        return 0xeb;
      case Op::Pxor:
        return 0xef;
      case Op::Pmullw:
        return 0xd5;
      default:
        el_panic("not a packed-int op: %s", opName(op));
    }
}

} // namespace

void
Assembler::pArithMmMm(Op op, uint8_t d, uint8_t s)
{
    bytes({0x0f, pArithByte(op)});
    emitModRmReg(d, s);
}

void
Assembler::pArithMmM(Op op, uint8_t d, const MemRef &m)
{
    bytes({0x0f, pArithByte(op)});
    emitModRm(d, m);
}

void
Assembler::emms()
{
    bytes({0x0f, 0x77});
}

// ----- SSE -----------------------------------------------------------------

void
Assembler::movapsXM(uint8_t x, const MemRef &m)
{
    bytes({0x0f, 0x28});
    emitModRm(x, m);
}

void
Assembler::movapsMX(const MemRef &m, uint8_t x)
{
    bytes({0x0f, 0x29});
    emitModRm(x, m);
}

void
Assembler::movapsXX(uint8_t d, uint8_t s)
{
    bytes({0x0f, 0x28});
    emitModRmReg(d, s);
}

void
Assembler::movupsXM(uint8_t x, const MemRef &m)
{
    bytes({0x0f, 0x10});
    emitModRm(x, m);
}

void
Assembler::movupsMX(const MemRef &m, uint8_t x)
{
    bytes({0x0f, 0x11});
    emitModRm(x, m);
}

void
Assembler::movssXM(uint8_t x, const MemRef &m)
{
    bytes({0xf3, 0x0f, 0x10});
    emitModRm(x, m);
}

void
Assembler::movssMX(const MemRef &m, uint8_t x)
{
    bytes({0xf3, 0x0f, 0x11});
    emitModRm(x, m);
}

void
Assembler::movsdXM(uint8_t x, const MemRef &m)
{
    bytes({0xf2, 0x0f, 0x10});
    emitModRm(x, m);
}

void
Assembler::movsdMX(const MemRef &m, uint8_t x)
{
    bytes({0xf2, 0x0f, 0x11});
    emitModRm(x, m);
}

void
Assembler::movdqaXM(uint8_t x, const MemRef &m)
{
    bytes({0x66, 0x0f, 0x6f});
    emitModRm(x, m);
}

void
Assembler::movdqaMX(const MemRef &m, uint8_t x)
{
    bytes({0x66, 0x0f, 0x7f});
    emitModRm(x, m);
}

namespace
{

/** Returns {prefix (0 = none), opcode} for an SSE arithmetic op. */
std::pair<uint8_t, uint8_t>
sseEnc(Op op)
{
    switch (op) {
      case Op::Addps:
        return {0, 0x58};
      case Op::Addss:
        return {0xf3, 0x58};
      case Op::Addpd:
        return {0x66, 0x58};
      case Op::Addsd:
        return {0xf2, 0x58};
      case Op::Mulps:
        return {0, 0x59};
      case Op::Mulss:
        return {0xf3, 0x59};
      case Op::Mulpd:
        return {0x66, 0x59};
      case Op::Mulsd:
        return {0xf2, 0x59};
      case Op::Subps:
        return {0, 0x5c};
      case Op::Subss:
        return {0xf3, 0x5c};
      case Op::Subpd:
        return {0x66, 0x5c};
      case Op::Divps:
        return {0, 0x5e};
      case Op::Divss:
        return {0xf3, 0x5e};
      case Op::Andps:
        return {0, 0x54};
      case Op::Xorps:
        return {0, 0x57};
      case Op::Sqrtss:
        return {0xf3, 0x51};
      case Op::PadddX:
        return {0x66, 0xfe};
      default:
        el_panic("not an SSE arith op: %s", opName(op));
    }
}

} // namespace

void
Assembler::sseArithXX(Op op, uint8_t d, uint8_t s)
{
    auto [prefix, opc] = sseEnc(op);
    if (prefix)
        emit8(prefix);
    bytes({0x0f, opc});
    emitModRmReg(d, s);
}

void
Assembler::sseArithXM(Op op, uint8_t d, const MemRef &m)
{
    auto [prefix, opc] = sseEnc(op);
    if (prefix)
        emit8(prefix);
    bytes({0x0f, opc});
    emitModRm(d, m);
}

void
Assembler::ucomissXX(uint8_t a, uint8_t b)
{
    bytes({0x0f, 0x2e});
    emitModRmReg(a, b);
}

void
Assembler::cvtps2pd(uint8_t d, uint8_t s)
{
    bytes({0x0f, 0x5a});
    emitModRmReg(d, s);
}

void
Assembler::cvtpd2ps(uint8_t d, uint8_t s)
{
    bytes({0x66, 0x0f, 0x5a});
    emitModRmReg(d, s);
}

void
Assembler::cvtsi2ss(uint8_t d, Reg s)
{
    bytes({0xf3, 0x0f, 0x2a});
    emitModRmReg(d, s);
}

void
Assembler::cvttss2si(Reg d, uint8_t s)
{
    bytes({0xf3, 0x0f, 0x2c});
    emitModRmReg(d, s);
}

} // namespace el::ia32
