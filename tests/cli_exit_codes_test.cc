/**
 * @file
 * Exit-code hygiene for the el_run CLI: scripts and CI must be able to
 * tell *whose fault* a failed run was from the exit code alone —
 * 0 success, 1 usage, 10 the guest's own fault, 20 a translator
 * internal error, 30 a sentinel-detected divergence, 40 an accounting
 * audit violation on an otherwise-clean run. The binary under
 * test comes from the EL_RUN_BIN environment variable, which the CMake
 * test registration points at the just-built el_run.
 *
 * Every abnormal exit must also leave a postmortem bundle behind: the
 * second half of this file runs each failure class with an explicit
 * --postmortem-out and asserts the bundle is schema-valid and names
 * the exit class it was written for.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "support/json.hh"

namespace
{

int
runCli(const std::string &args)
{
    const char *bin = std::getenv("EL_RUN_BIN");
    EXPECT_NE(bin, nullptr)
        << "EL_RUN_BIN must point at the el_run binary";
    if (!bin)
        return -1;
    std::string cmd =
        std::string(bin) + " " + args + " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    if (rc < 0 || !WIFEXITED(rc))
        return -1;
    return WEXITSTATUS(rc);
}

std::string
tmpBundlePath(const std::string &tag)
{
    return testing::TempDir() + "el_postmortem_" + tag + ".json";
}

/** Run el_run writing a postmortem to @p path; parse it into @p root. */
int
runCliWithBundle(const std::string &args, const std::string &path,
                 el::json::Value *root)
{
    std::remove(path.c_str());
    int code = runCli(args + " --postmortem-out=" + path);
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "no postmortem bundle at " << path;
    if (!in.good())
        return code;
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    EXPECT_TRUE(el::json::Parser::parse(text.str(), root, &error))
        << "postmortem is not valid JSON: " << error;
    return code;
}

/** The invariants every bundle must satisfy, per DESIGN.md §12. */
void
expectBundleSchema(const el::json::Value &root,
                   const std::string &exit_class, int exit_code)
{
    using el::json::Value;
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.strOr("kind", ""), "el-postmortem");
    EXPECT_EQ(root.numberOr("version", 0), 1.0);
    const Value *exit = root.find("exit");
    ASSERT_NE(exit, nullptr);
    EXPECT_EQ(exit->strOr("class", ""), exit_class);
    EXPECT_EQ(exit->numberOr("code", -1),
              static_cast<double>(exit_code));
}

TEST(CliExitCodes, CleanRunIsZero)
{
    EXPECT_EQ(runCli("--workload=jit_rewriter"), 0);
}

TEST(CliExitCodes, UsageErrorIsOne)
{
    EXPECT_EQ(runCli("--no-such-flag"), 1);
    EXPECT_EQ(runCli("--workload="), 1);
    EXPECT_EQ(runCli("--workload=no_such_personality"), 1);
    EXPECT_EQ(runCli("--workload=jit_rewriter --log-level=verbose"), 1);
}

TEST(CliExitCodes, IoErrorIsTwo)
{
    EXPECT_EQ(runCli("--workload=jit_rewriter "
                     "--report-json=/no/such/dir/report.json"),
              2);
    EXPECT_EQ(runCli("--workload=jit_rewriter "
                     "--metrics-out=/no/such/dir/metrics.ndjson"),
              2);
}

TEST(CliExitCodes, UnhandledGuestFaultIsTen)
{
    // The faulter diagnostic dereferences an unmapped page with no
    // handler registered: the guest's own fault, not the translator's.
    EXPECT_EQ(runCli("--workload=faulter"), 10);
}

TEST(CliExitCodes, TranslatorInternalErrorIsTwenty)
{
    // Injected BTOS allocation failure on every attempt: the runtime
    // cannot initialize. That is our failure, not the guest's.
    EXPECT_EQ(runCli("--workload=jit_rewriter --fault=btos_alloc:1024"),
              20);
}

TEST(CliExitCodes, SentinelDivergenceIsThirty)
{
    // Seeded miscompile + full shadow-checking: the sentinel detects
    // the corrupted translation and el_run reports the divergence class
    // even though the run completes with the correct answer.
    EXPECT_EQ(runCli("--workload=jit_rewriter --fault=miscompile:128 "
                     "--fault-seed=1 --selfcheck=1"),
              30);
}

TEST(CliExitCodes, AuditViolationIsForty)
{
    // The acct_skew site corrupts only the books — it adds phantom
    // Overhead cycles and a phantom cold-translation count without
    // touching guest execution — so the run itself succeeds and the
    // only witness is the auditor's closure check.
    EXPECT_EQ(runCli("--workload=jit_rewriter --audit "
                     "--fault=acct_skew:1024"),
              40);
    // Same corruption without --audit: nobody is checking the books,
    // the run exits clean. This is exactly why CI turns the audit on.
    EXPECT_EQ(runCli("--workload=jit_rewriter --no-audit "
                     "--fault=acct_skew:1024"),
              0);
}

TEST(CliExitCodes, AuditPassesCleanRuns)
{
    EXPECT_EQ(runCli("--workload=jit_rewriter --audit"), 0);
    EXPECT_EQ(runCli("--workload=jit_rewriter --audit --threads=2 "
                     "--deterministic"),
              0);
}

// ----- postmortem bundles on abnormal exit ------------------------------

TEST(CliPostmortem, CleanRunWritesNoBundle)
{
    std::string path = tmpBundlePath("clean");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--workload=jit_rewriter --postmortem-out=" + path),
              0);
    std::ifstream in(path);
    EXPECT_FALSE(in.good())
        << "a clean, uninjected run must not write a postmortem";
}

TEST(CliPostmortem, DumpOnExitForcesABundle)
{
    using el::json::Value;
    Value root;
    std::string path = tmpBundlePath("forced");
    int code = runCliWithBundle(
        "--workload=jit_rewriter --dump-on-exit", path, &root);
    EXPECT_EQ(code, 0);
    expectBundleSchema(root, "ok", 0);
    // A healthy run still carries the full observability payload.
    const Value *fl = root.find("flight");
    ASSERT_NE(fl, nullptr);
    const Value *events = fl->find("events");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    EXPECT_FALSE(events->arr.empty());
}

TEST(CliPostmortem, GuestFaultBundleNamesTheFault)
{
    using el::json::Value;
    Value root;
    std::string path = tmpBundlePath("guest_fault");
    int code =
        runCliWithBundle("--workload=faulter", path, &root);
    EXPECT_EQ(code, 10);
    expectBundleSchema(root, "guest_fault", 10);
    // The flight tail must contain the delivered fault event, and the
    // ledger must have a provenance chain for the code that ran.
    const Value *events = root.find("flight")
                              ? root.find("flight")->find("events")
                              : nullptr;
    ASSERT_NE(events, nullptr);
    bool fault_event = false;
    for (const Value &e : events->arr)
        if (e.strOr("kind", "") == "guest_fault")
            fault_event = true;
    EXPECT_TRUE(fault_event) << "no guest_fault flight event in bundle";
    const Value *prov = root.find("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_TRUE(prov->isArray());
    EXPECT_FALSE(prov->arr.empty())
        << "faulting run must carry provenance for its blocks";
}

TEST(CliPostmortem, InternalErrorBundleRecordsInitFailure)
{
    using el::json::Value;
    Value root;
    std::string path = tmpBundlePath("internal");
    int code = runCliWithBundle(
        "--workload=jit_rewriter --fault=btos_alloc:1024", path, &root);
    EXPECT_EQ(code, 20);
    expectBundleSchema(root, "internal", 20);
    // The runtime never initialized: the bundle must say why, and must
    // name the injected site that killed it.
    const Value *exit = root.find("exit");
    ASSERT_NE(exit, nullptr);
    EXPECT_NE(exit->strOr("init_error", ""), "");
    const Value *fi = root.find("fault_injection");
    ASSERT_NE(fi, nullptr);
    bool named = false;
    const Value *sites = fi->find("sites");
    ASSERT_NE(sites, nullptr);
    for (const Value &s : sites->arr)
        if (s.strOr("site", "") == "btos_alloc" &&
            s.numberOr("fires", 0) > 0)
            named = true;
    EXPECT_TRUE(named) << "bundle does not name the btos_alloc site";
}

TEST(CliPostmortem, AuditViolationBundleIsClassAudit)
{
    using el::json::Value;
    Value root;
    std::string path = tmpBundlePath("audit");
    int code = runCliWithBundle(
        "--workload=jit_rewriter --audit --fault=acct_skew:1024", path,
        &root);
    EXPECT_EQ(code, 40);
    expectBundleSchema(root, "audit", 40);
    // The stamp satellite: every bundle names its producer so readers
    // (el_prof --provenance, el_diff) can refuse mismatched inputs.
    const Value *producer = root.find("producer");
    ASSERT_NE(producer, nullptr);
    EXPECT_EQ(producer->strOr("tool", ""), "el_run");
    EXPECT_NE(producer->strOr("build", ""), "");
    EXPECT_EQ(producer->numberOr("schema", 0), 1.0);
}

TEST(CliPostmortem, DivergenceBundleCarriesTheSentinelLedger)
{
    using el::json::Value;
    Value root;
    std::string path = tmpBundlePath("divergence");
    int code = runCliWithBundle(
        "--workload=jit_rewriter --fault=miscompile:128 "
        "--fault-seed=1 --selfcheck=1",
        path, &root);
    EXPECT_EQ(code, 30);
    expectBundleSchema(root, "divergence", 30);
    const Value *sent = root.find("sentinel");
    ASSERT_NE(sent, nullptr);
    EXPECT_GE(sent->numberOr("total_divergences", 0), 1.0);
    const Value *divs = sent->find("divergences");
    ASSERT_NE(divs, nullptr);
    EXPECT_FALSE(divs->arr.empty());
    // The convicted translation's provenance chain is in the bundle.
    const Value *prov = root.find("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_FALSE(prov->arr.empty());
}

} // namespace
