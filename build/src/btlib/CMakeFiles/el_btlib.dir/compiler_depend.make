# Empty compiler generated dependencies file for el_btlib.
# This may be replaced when dependencies are built.
