/**
 * @file
 * Shared helpers for the benchmark binaries: each bench regenerates one
 * table/figure of the paper's evaluation section and prints the paper's
 * reported numbers next to the measured ones. Absolute values are not
 * expected to match (the substrate is a simulator); the shape is what
 * is being reproduced.
 */

#ifndef EL_BENCH_COMMON_HH
#define EL_BENCH_COMMON_HH

#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/report.hh"
#include "guest/workloads.hh"
#include "harness/exec.hh"
#include "harness/native.hh"
#include "support/buildinfo.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "support/strfmt.hh"

namespace el::bench
{

/**
 * The bench binaries take no options — every knob lives in the source
 * so committed baselines stay comparable across runs. Mirror el_run's
 * argv hygiene anyway: an unknown flag or stray operand fails loudly
 * instead of silently running the defaults (the failure mode where a
 * typoed sweep quietly re-measures the baseline). Returns a
 * non-negative exit code when main() should return it, -1 to proceed.
 */
inline int
handleArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help") {
            std::printf("usage: %s\n"
                        "Takes no options; prints the reproduced "
                        "table and writes BENCH_<name>.json beside "
                        "it. Compare two runs with "
                        "tools/bench_diff.py.\n", argv[0]);
            return 0;
        }
        std::fprintf(stderr,
                     "%s: unexpected argument '%s' (benches take no "
                     "options; sweep knobs live in the source and "
                     "runs are compared with tools/bench_diff.py)\n",
                     argv[0], arg.c_str());
        return 1;
    }
    return -1;
}

/** Per-bucket cycle fractions of a translated run. */
struct Distribution
{
    double hot = 0, cold = 0, overhead = 0, native = 0, idle = 0;
};

inline Distribution
distributionOf(const core::Runtime &rt)
{
    const auto &st = const_cast<core::Runtime &>(rt).machine().stats();
    double tot = st.totalCycles();
    Distribution d;
    if (tot <= 0)
        return d;
    d.hot = st.cycles[0] / tot;
    d.cold = st.cycles[1] / tot;
    d.overhead = st.cycles[2] / tot;
    d.native = st.cycles[3] / tot;
    d.idle = st.cycles[4] / tot;
    return d;
}

inline std::string
pct(double v)
{
    return strfmt("%5.1f%%", v * 100.0);
}

/**
 * Machine-readable companion to the printed tables: every bench binary
 * builds one Report and write()s it as `BENCH_<name>.json` in the
 * working directory (CI uploads these as artifacts). Rows carry the
 * per-personality / per-configuration numbers; scalars carry the
 * headline aggregates (geomeans, speedups); rows that ran a translated
 * workload attach the Figure-6 cycle-attribution buckets.
 */
class Report
{
  public:
    struct Row
    {
        std::string label;
        std::vector<std::pair<std::string, double>> metrics;
        bool has_attr = false;
        core::Attribution attr;

        Row &
        metric(const std::string &key, double value)
        {
            metrics.emplace_back(key, value);
            return *this;
        }

        Row &
        attribution(core::Runtime &rt)
        {
            attr = core::attributionOf(rt);
            has_attr = true;
            return *this;
        }
    };

    explicit Report(std::string name) : name_(std::move(name)) {}

    /** Add a row; the reference stays valid for further chaining. */
    Row &
    row(const std::string &label)
    {
        rows_.emplace_back();
        rows_.back().label = label;
        return rows_.back();
    }

    void
    scalar(const std::string &key, double value)
    {
        scalars_.emplace_back(key, value);
    }

    /**
     * Headline scalar with an explicit regression tolerance for
     * tools/bench_diff.py: a later run whose value moves against this
     * one by more than @p tolerance (relative, e.g. 0.15 = 15%) is
     * flagged when diffed against a committed baseline.
     */
    void
    scalar(const std::string &key, double value, double tolerance)
    {
        scalars_.emplace_back(key, value);
        tolerances_.emplace_back(key, tolerance);
    }

    std::string
    json() const
    {
        json::Writer w;
        w.beginObject();
        w.kv("bench", name_);
        buildinfo::writeStamp(
            w, buildinfo::ProducerStamp::make("el_bench"));
        w.key("scalars");
        w.beginObject();
        for (const auto &[k, v] : scalars_)
            w.kv(k, v);
        w.endObject();
        if (!tolerances_.empty()) {
            w.key("tolerances");
            w.beginObject();
            for (const auto &[k, v] : tolerances_)
                w.kv(k, v);
            w.endObject();
        }
        w.key("rows");
        w.beginArray();
        for (const Row &r : rows_) {
            w.beginObject();
            w.kv("label", r.label);
            w.key("metrics");
            w.beginObject();
            for (const auto &[k, v] : r.metrics)
                w.kv(k, v);
            w.endObject();
            if (r.has_attr) {
                w.key("attribution");
                w.beginObject();
                w.kv("cold_code", r.attr.cold_code);
                w.kv("hot_code", r.attr.hot_code);
                w.kv("btgeneric", r.attr.btgeneric);
                w.kv("fault_handling", r.attr.fault_handling);
                w.kv("native", r.attr.native);
                w.kv("idle", r.attr.idle);
                w.kv("total", r.attr.total());
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
        return w.str() + "\n";
    }

    bool
    write() const
    {
        std::string path = "BENCH_" + name_ + ".json";
        std::ofstream f(path, std::ios::binary);
        if (f)
            f << json();
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::printf("bench json: %s\n", path.c_str());
        return true;
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, double>> scalars_;
    std::vector<std::pair<std::string, double>> tolerances_;
    std::deque<Row> rows_; // deque: row() references must stay valid
};

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("==================================================="
                "===========================\n");
    std::printf("%s\n(reproduces %s of \"IA-32 Execution Layer\", "
                "MICRO 2003)\n", title, paper_ref);
    std::printf("==================================================="
                "===========================\n");
}

} // namespace el::bench

#endif // EL_BENCH_COMMON_HH
