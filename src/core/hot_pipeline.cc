#include "core/hot_pipeline.hh"

#include <algorithm>

namespace el::core
{

HotPipeline::HotPipeline(const Config &config, SessionFn session)
    : session_(std::move(session)), deterministic_(config.deterministic),
      worker_avail_(std::max(1u, config.threads), 0.0)
{
    pool_.start(std::max(1u, config.threads),
                [this](unsigned) { workerLoop(); });
}

HotPipeline::~HotPipeline()
{
    queue_.close();
    pool_.join();
}

void
HotPipeline::workerLoop()
{
    HotCandidate cand;
    while (queue_.pop(&cand)) {
        HotArtifact art;
        art.seq = cand.seq;
        art.cold_block_id = cand.cold_block_id;
        art.generation = cand.generation;
        art.start_cycles = cand.start_cycles;
        art.ready_cycles = cand.ready_cycles;
        art.worker_slot = cand.worker_slot;
        session_(cand, &art);
        {
            std::lock_guard<std::mutex> lk(results_mu_);
            results_.push_back(std::move(art));
        }
        results_cv_.notify_all();
    }
}

uint64_t
HotPipeline::enqueue(HotCandidate candidate, double now,
                     double session_cost)
{
    candidate.seq = next_seq_++;
    // Plan the session onto the least-loaded simulated worker: it
    // starts when both the candidate and a worker are available. The
    // plan depends only on enqueue order and simulated time, never on
    // real thread scheduling, so deterministic adoption is replayable.
    auto it = std::min_element(worker_avail_.begin(), worker_avail_.end());
    double start = std::max(now, *it);
    candidate.start_cycles = start;
    candidate.ready_cycles = start + session_cost;
    candidate.worker_slot =
        static_cast<unsigned>(it - worker_avail_.begin());
    *it = candidate.ready_cycles;
    pending_ready_[candidate.seq] = candidate.ready_cycles;
    uint64_t seq = candidate.seq;
    queue_.push(std::move(candidate));
    return seq;
}

void
HotPipeline::quiesce()
{
    if (pending_ready_.empty())
        return;
    std::unique_lock<std::mutex> lk(results_mu_);
    // Every not-yet-drained candidate is either still with a worker or
    // landed in results_; wait for the two sets to coincide.
    results_cv_.wait(lk, [&] {
        return results_.size() == pending_ready_.size();
    });
}

std::vector<HotArtifact>
HotPipeline::drain(double now)
{
    std::vector<HotArtifact> out;
    if (pending_ready_.empty())
        return out;
    std::unique_lock<std::mutex> lk(results_mu_);

    auto take_seq = [&](uint64_t seq) -> bool {
        for (size_t i = 0; i < results_.size(); ++i) {
            if (results_[i].seq == seq) {
                out.push_back(std::move(results_[i]));
                results_.erase(results_.begin() +
                               static_cast<ptrdiff_t>(i));
                return true;
            }
        }
        return false;
    };

    if (deterministic_) {
        // Adopt strictly in enqueue order, and only once guest
        // simulated time has reached the candidate's planned
        // completion. If the plan says it is done but the real worker
        // has not landed it yet, wait (wall-clock only — invisible to
        // the simulation).
        for (;;) {
            auto it = pending_ready_.find(next_adopt_seq_);
            if (it == pending_ready_.end() || it->second > now)
                break;
            uint64_t seq = next_adopt_seq_;
            results_cv_.wait(lk, [&] {
                for (const HotArtifact &a : results_)
                    if (a.seq == seq)
                        return true;
                return false;
            });
            take_seq(seq);
            pending_ready_.erase(it);
            ++next_adopt_seq_;
        }
    } else {
        // Adopt whatever has landed; order by sequence for stable
        // processing. The *set* adopted here depends on real worker
        // speed — the documented benign race.
        std::sort(results_.begin(), results_.end(),
                  [](const HotArtifact &a, const HotArtifact &b) {
                      return a.seq < b.seq;
                  });
        for (HotArtifact &a : results_) {
            pending_ready_.erase(a.seq);
            out.push_back(std::move(a));
        }
        results_.clear();
    }
    return out;
}

} // namespace el::core
