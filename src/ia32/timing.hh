/**
 * @file
 * Direct-execution IA-32 cost model (the Figure 8 "Xeon" baseline).
 *
 * Runs the reference interpreter and charges an approximate cycle cost per
 * retired instruction: a superscalar base CPI, cache-hierarchy latency for
 * memory operands, multi-cycle latencies for multiplies/divides/FP, and a
 * branch-predictor penalty for hard-to-predict branches. Crucially for the
 * paper's misalignment story, misaligned accesses are nearly free here —
 * the asymmetry that makes misalignment avoidance matter on IPF.
 */

#ifndef EL_IA32_TIMING_HH
#define EL_IA32_TIMING_HH

#include <cstdint>

#include "ia32/interp.hh"
#include "mem/cache_model.hh"

namespace el::ia32
{

/** Per-class cycle costs of the direct-execution model. */
struct DirectTimingConfig
{
    double base_cpi = 0.5;          //!< Two-wide issue.
    unsigned mul_cycles = 3;
    unsigned div_cycles = 20;
    unsigned fp_cycles = 4;
    unsigned fdiv_cycles = 23;
    unsigned branch_miss_cycles = 12;
    double indirect_miss_rate = 0.30;  //!< BTB miss rate for indirects.
    double cond_miss_rate = 0.05;      //!< Conditional mispredict rate.
    unsigned misalign_extra = 2;       //!< Cheap on IA-32 (the point!).
};

/** Interpreter + cost model; accumulates cycles for a full guest run. */
class DirectRunner
{
  public:
    DirectRunner(State &state, mem::Memory &memory,
                 DirectTimingConfig cfg = {})
        : interp_(state, memory), cache_(mem::CacheModel::xeon()),
          cfg_(cfg)
    {}

    /**
     * Run until HLT, a fault, or @p max_insns retired.
     * INT vectors are reported through @p on_int; return false from it to
     * stop the run (e.g. on the exit syscall).
     */
    template <typename OnInt>
    StepResult
    run(uint64_t max_insns, OnInt &&on_int)
    {
        StepResult last;
        for (uint64_t i = 0; i < max_insns; ++i) {
            last = step();
            if (last.kind == StepKind::Fault || last.kind == StepKind::Halt)
                return last;
            if (last.kind == StepKind::Int && !on_int(last.vector))
                return last;
        }
        return last;
    }

    /** Execute one instruction and charge its cost. */
    StepResult step();

    double cycles() const { return cycles_; }
    uint64_t retired() const { return interp_.retired(); }
    Interpreter &interp() { return interp_; }
    mem::CacheModel &cache() { return cache_; }

  private:
    void charge(const Insn &insn, const State &pre);

    Interpreter interp_;
    mem::CacheModel cache_;
    DirectTimingConfig cfg_;
    double cycles_ = 0.0;
    uint64_t branch_seed_ = 0x243f6a8885a308d3ULL;
};

} // namespace el::ia32

#endif // EL_IA32_TIMING_HH
