/**
 * @file
 * Differential run attribution: where did the cycles between two runs
 * go?
 *
 * `el_diff` (and bench_diff.py through it) feeds two el-report
 * documents of the *same guest image* — cold vs warm, a thread sweep,
 * before/after an optimization — through this engine. The engine
 * aligns the runs at two granularities:
 *
 *  - **phases**: the Figure-6 attribution categories (cold_code,
 *    hot_code, btgeneric, fault_handling, native, idle). Each report's
 *    categories sum to its total cycle count exactly, so the phase
 *    deltas sum to the total delta exactly; any discrepancy is
 *    reported as `phase_residual`, never hidden.
 *
 *  - **blocks**: per-translation cycle rows (present when the runs
 *    were collected with block tracking), aligned by canonical
 *    (entry EIP, kind). Block rows only cover *executed translation*
 *    cycles — synthetic charges (translation overhead, native, idle)
 *    have no block — so the block view carries its own explicit
 *    residual, plus a noise threshold that pools blocks whose |delta|
 *    is below a fraction of the total delta into one "below noise"
 *    row instead of listing thousands of ±1-cycle rows.
 *
 * Comparing incomparable runs is the classic way to lie with numbers,
 * so compatibility is checked first: same document schema, same image
 * fingerprint (when both runs recorded one), same workload. Mismatches
 * are refused with the differing values named; `Options::force`
 * downgrades the refusal for deliberate cross-image comparisons.
 */

#ifndef EL_SUPPORT_ATTRIB_HH
#define EL_SUPPORT_ATTRIB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/buildinfo.hh"
#include "support/json.hh"

namespace el::attrib
{

/** The slice of one el-report document the differ consumes. */
struct RunView
{
    std::string path;        //!< Where it was loaded from (messages).
    std::string workload;
    std::string tool;        //!< producer.tool ("" when unstamped).
    std::string build;       //!< producer.build.
    std::string fingerprint; //!< producer.fingerprint ("" if absent).
    int schema = 0;          //!< producer.schema (0 when unstamped).
    int version = 0;         //!< document version.
    double cycles = 0;
    //! Figure-6 categories in report order (name, cycles).
    std::vector<std::pair<std::string, double>> phases;
    double attribution_total = 0;

    struct BlockRow
    {
        uint32_t eip = 0;
        std::string kind; //!< "hot", "cold" or "runtime".
        double cycles = 0;
        double insns = 0;
    };
    bool has_blocks = false;
    std::vector<BlockRow> blocks; //!< Pre-merged by (eip, kind).
};

/**
 * Parse @p text (an el-report JSON document) into a RunView.
 * Returns false with @p err set when the document is not a
 * well-formed el-report (wrong kind, missing attribution, bad JSON).
 */
bool parseReport(const std::string &text, const std::string &path,
                 RunView *out, std::string *err);

/**
 * Are two runs comparable? Checks document version, producer schema,
 * image fingerprint and workload. False fills @p why with the first
 * mismatch, naming both values.
 */
bool compatible(const RunView &base, const RunView &cur,
                std::string *why);

struct Options
{
    //! Blocks whose |delta| is below this fraction of |total delta|
    //! are pooled into the below-noise row.
    double noise_frac = 0.01;
};

struct PhaseDelta
{
    std::string phase;
    double base = 0;
    double cur = 0;
    double delta = 0;
    double share = 0; //!< delta / total delta (0 when total is 0).
};

struct BlockDelta
{
    uint32_t eip = 0;
    std::string kind;
    double base = 0;
    double cur = 0;
    double delta = 0;
};

/** The attribution of one pair of runs. */
struct Diff
{
    double base_cycles = 0;
    double cur_cycles = 0;
    double delta = 0; //!< cur - base.

    //! Phase rows, sorted by |delta| descending. Sum of deltas plus
    //! phase_residual equals `delta` exactly.
    std::vector<PhaseDelta> phases;
    double phase_residual = 0;
    //! Fraction of |delta| explained by named phases: 1 - |residual| /
    //! |delta| (1 when delta is 0).
    double attributed_fraction = 1.0;

    bool blocks_available = false;
    double noise_threshold = 0; //!< Absolute cycles.
    //! Above-noise block rows, sorted by |delta| descending.
    std::vector<BlockDelta> blocks;
    double below_noise = 0;     //!< Signed sum of pooled block deltas.
    uint64_t below_noise_rows = 0;
    //! delta minus every block delta (incl. pooled): the cycles that
    //! moved outside tracked blocks — synthetic translation overhead,
    //! native and idle charges.
    double block_residual = 0;
};

/** Compute the attribution. Callers check compatible() first. */
Diff diffRuns(const RunView &base, const RunView &cur,
              const Options &opts);

/** Serialize as an el-diff v1 JSON document (trailing newline). */
std::string diffJson(const Diff &d, const RunView &base,
                     const RunView &cur,
                     const buildinfo::ProducerStamp &producer);

/** Render the human-readable attribution table. */
std::string diffTable(const Diff &d, const RunView &base,
                      const RunView &cur);

} // namespace el::attrib

#endif // EL_SUPPORT_ATTRIB_HH
