/**
 * @file
 * Deterministic fault-injection harness.
 *
 * Production dynamic translators live or die on their recovery paths —
 * allocation failures, translation aborts, code-cache exhaustion and
 * guest fault storms all have to degrade gracefully rather than crash.
 * This header defines named injection sites threaded through the stack
 * (BTLib allocation, cold/hot translation, the IPF code cache, the
 * reference interpreter) and a seeded injector that fires them with a
 * configured probability, so every recovery path can be exercised
 * reproducibly by the chaos tests (tests/chaos_recovery_test.cc).
 *
 * The injector is consulted through a process-global registration so
 * distant layers (btlib, ia32) need no plumbing: when no injector is
 * installed — the default, and always the case for reference
 * interpreter runs — every site is dead and costs one pointer load.
 */

#ifndef EL_SUPPORT_FAULTINJECT_HH
#define EL_SUPPORT_FAULTINJECT_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "support/random.hh"

namespace el
{

/** Named failure points the injector can fire. */
enum class FaultSite : uint8_t
{
    BtosAlloc = 0,   //!< BTLib page allocation returns 0.
    ColdXlateAbort,  //!< Cold translation aborts mid-session.
    HotXlateAbort,   //!< Hot optimization session aborts.
    CacheExhaust,    //!< Code cache reports synthetic exhaustion.
    GuestFaultStorm, //!< Spurious transient guest fault (page/div/FP).
    Miscompile,      //!< Translation succeeds but one emitted bundle is
                     //!< corrupted (the divergence sentinel's prey).
    StoreCorrupt,    //!< The artifact store writes a file with one
                     //!< flipped byte (the hardened loader's prey).
    AcctSkew,        //!< Cycle accounting silently corrupted: cycles
                     //!< added to a bucket outside the charging paths
                     //!< plus a phantom counter bump (the accounting
                     //!< auditor's prey).
    // ----- CrashPoint family: the site _exit()s the whole process ----
    // These simulate kill -9 at the crash-consistency protocol's
    // distinct windows. Each fires at most once (the process dies), and
    // the process-kill chaos harness (tests/crash_matrix_test.cc)
    // relaunches with --resume and asserts bit-exact recovery.
    CrashJournalAppend, //!< Die mid-journal-append: a torn half-frame
                        //!< is left at the journal tail.
    CrashStoreRename,   //!< Die after the temp store file is durable
                        //!< but before the atomic rename publishes it.
    CrashCheckpoint,    //!< Die mid-checkpoint-write: a torn temp file
                        //!< is left beside the intact old checkpoint.
    CrashAdopt,         //!< Die right after hot artifacts were adopted
                        //!< in memory, before their journal flush.
    NumSites,
};

/** Exit code crashNow() dies with, distinct from every documented
 *  el_run exit class so the chaos harness can tell an injected kill
 *  from a real failure. */
constexpr int crash_exit_code = 43;

/** First member of the CrashPoint family (for range checks). */
constexpr FaultSite first_crash_site = FaultSite::CrashJournalAppend;

/** True when @p site is one of the process-kill crash points. */
inline bool
isCrashSite(FaultSite site)
{
    return site >= first_crash_site && site < FaultSite::NumSites;
}

/**
 * Terminate the process immediately (no atexit handlers, no stream
 * flushing beyond the diagnostic line below) — the closest portable
 * approximation of kill -9 that injection can trigger from inside.
 */
[[noreturn]] void crashNow(FaultSite site);

constexpr std::size_t num_fault_sites =
    static_cast<std::size_t>(FaultSite::NumSites);

/** Printable site name ("btos_alloc", ...). */
const char *faultSiteName(FaultSite site);

/**
 * Injection configuration: a seed plus a per-site firing probability in
 * parts per 1024. All-zero probabilities (the default) disable the
 * subsystem entirely.
 */
struct FaultConfig
{
    uint64_t seed = 0;
    std::array<uint16_t, num_fault_sites> prob{}; //!< Per-site, /1024.
    uint64_t max_fires = 0; //!< Total firing budget; 0 = unlimited.

    bool
    enabled() const
    {
        for (uint16_t p : prob)
            if (p)
                return true;
        return false;
    }

    /** Set one site's probability (chainable in test setup). */
    FaultConfig &
    site(FaultSite s, uint16_t prob_1024)
    {
        prob[static_cast<std::size_t>(s)] = prob_1024;
        return *this;
    }
};

/**
 * Seeded, deterministic fault injector with per-site fire accounting.
 *
 * The main translation thread consults it through shouldFire(), which
 * advances the injector's primary PRNG stream. Pipeline workers must
 * not touch that stream (its consumption order would then depend on
 * thread scheduling); they derive an independent FaultStream keyed by
 * the work item's sequence number instead, so worker-side injection is
 * reproducible regardless of worker count or scheduling. Accounting
 * (fires, consults, the max_fires budget) is atomic and shared across
 * all streams.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed ? cfg.seed : 1)
    {}

    FaultInjector(const FaultInjector &o) { *this = o; }
    FaultInjector &
    operator=(const FaultInjector &o)
    {
        cfg_ = o.cfg_;
        rng_ = o.rng_;
        listener_ = o.listener_;
        for (std::size_t i = 0; i < num_fault_sites; ++i)
            fires_[i].store(o.fires_[i].load());
        total_fires_.store(o.total_fires_.load());
        total_consults_.store(o.total_consults_.load());
        return *this;
    }

    /** Roll the dice for @p site; true means the caller must fail.
     *  Main-thread only (advances the primary PRNG stream). */
    bool shouldFire(FaultSite site);

    /**
     * Observer invoked on every main-thread fire (shouldFire() only —
     * worker-side FaultStream fires are not funneled through it, since
     * the listener is not required to be thread-safe; the pipeline
     * records those itself with the session's simulated timeline). The
     * observability layer uses this to trace every injected fault.
     */
    void
    setFireListener(std::function<void(FaultSite)> listener)
    {
        listener_ = std::move(listener);
    }

    /** Deterministic uniform pick in [0, n); used for storm kinds. */
    uint64_t pick(uint64_t n) { return rng_.range(n); }

    /** Seed for the derived PRNG stream @p stream_id (thread-safe). */
    uint64_t
    streamSeed(uint64_t stream_id) const
    {
        // SplitMix-style mix keeps derived streams uncorrelated with
        // the primary stream and with each other.
        uint64_t z = (cfg_.seed ? cfg_.seed : 1) ^
                     (0x9e3779b97f4a7c15ULL * (stream_id + 1));
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        return z ^ (z >> 27);
    }

    /**
     * Record one consult + (maybe) one fire from a derived stream.
     * Returns false when the shared max_fires budget is exhausted (the
     * caller then must NOT fail). Thread-safe.
     */
    bool recordStreamFire(FaultSite site);
    void recordStreamConsult() { total_consults_.fetch_add(1); }

    uint64_t
    fires(FaultSite site) const
    {
        return fires_[static_cast<std::size_t>(site)].load();
    }

    uint64_t totalFires() const { return total_fires_.load(); }
    uint64_t totalConsults() const { return total_consults_.load(); }
    const FaultConfig &config() const { return cfg_; }

  private:
    FaultConfig cfg_;
    Rng rng_;
    std::function<void(FaultSite)> listener_; //!< Main-thread fires only.
    std::array<std::atomic<uint64_t>, num_fault_sites> fires_{};
    std::atomic<uint64_t> total_fires_{0};
    std::atomic<uint64_t> total_consults_{0};
};

/**
 * An independent, deterministic injection stream derived from a parent
 * injector. Used by pipeline workers: the stream id is the work item's
 * sequence number, so the dice rolls for one hot-translation session
 * are a pure function of (config seed, candidate sequence), never of
 * which worker ran it or when. Fires are accounted into the parent
 * atomically and honor the shared max_fires budget (budget exhaustion
 * order across concurrent streams is the one wall-clock-dependent
 * aspect; probabilities of 0 or 1024 are exactly reproducible).
 */
class FaultStream
{
  public:
    /** @p parent may be null: every site is then dead. */
    FaultStream(FaultInjector *parent, uint64_t stream_id)
        : parent_(parent),
          rng_(parent ? parent->streamSeed(stream_id) : 0)
    {}

    /** Roll this stream's dice for @p site (thread-safe). */
    bool
    shouldFire(FaultSite site)
    {
        if (!parent_)
            return false;
        parent_->recordStreamConsult();
        uint16_t p =
            parent_->config().prob[static_cast<std::size_t>(site)];
        if (!p)
            return false;
        if (rng_.range(1024) >= p)
            return false;
        return parent_->recordStreamFire(site);
    }

    /** Deterministic uniform pick in [0, n) from this stream's PRNG;
     *  used to choose which emitted instruction a miscompile corrupts.
     *  Pure function of (config seed, stream id, call order). */
    uint64_t pick(uint64_t n) { return rng_.range(n); }

  private:
    FaultInjector *parent_;
    Rng rng_;
};

/** The currently installed injector, or null (no injection). */
FaultInjector *activeFaultInjector();

/** Fast inline site check usable from any layer. */
inline bool
faultInjected(FaultSite site)
{
    FaultInjector *fi = activeFaultInjector();
    return fi && fi->shouldFire(site);
}

/**
 * RAII installation of an injector for one runtime's lifetime. The
 * previously installed injector (usually none) is restored on
 * destruction, so nested runtimes behave sanely in tests.
 */
class FaultInjectorScope
{
  public:
    FaultInjectorScope() = default;
    explicit FaultInjectorScope(const FaultConfig &cfg);
    ~FaultInjectorScope();

    FaultInjectorScope(const FaultInjectorScope &) = delete;
    FaultInjectorScope &operator=(const FaultInjectorScope &) = delete;

    /** The owned injector, or null when injection is disabled. */
    FaultInjector *get() { return owned_.active ? &owned_.injector : nullptr; }
    const FaultInjector *
    get() const
    {
        return owned_.active ? &owned_.injector : nullptr;
    }

  private:
    struct
    {
        bool active = false;
        FaultInjector injector{FaultConfig{}};
    } owned_;
    FaultInjector *previous_ = nullptr;
    bool installed_ = false;
};

/**
 * RAII suppression of the installed injector. The divergence sentinel
 * wraps its interpreter replays in this: a replay must re-execute the
 * architectural history exactly, so storm injection must neither
 * perturb it nor consume the primary injector's accounting.
 */
class FaultSuppressScope
{
  public:
    FaultSuppressScope();
    ~FaultSuppressScope();

    FaultSuppressScope(const FaultSuppressScope &) = delete;
    FaultSuppressScope &operator=(const FaultSuppressScope &) = delete;

  private:
    FaultInjector *suspended_ = nullptr;
};

} // namespace el

#endif // EL_SUPPORT_FAULTINJECT_HH
