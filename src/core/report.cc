#include "core/report.hh"

#include <cstring>
#include <fstream>

#include "core/runtime.hh"
#include "ia32/decoder.hh"
#include "ia32/state.hh"
#include "persist/store.hh"
#include "support/json.hh"
#include "support/profile.hh"
#include "support/strfmt.hh"
#include "support/trace.hh"

namespace el::core
{

using ipf::Bucket;

namespace
{

double
bucketCycles(const ipf::BucketStats &st, Bucket b)
{
    return st.cycles[static_cast<size_t>(b)];
}

double
misalignIn(const ipf::Machine &m, Bucket b)
{
    return m.misalignCycles()[static_cast<size_t>(b)];
}

constexpr uint64_t fnv_offset = 0xcbf29ce484222325ULL;
constexpr uint64_t fnv_prime = 0x100000001b3ULL;

void
fnv(uint64_t &h, const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnv_prime;
    }
}

} // namespace

GuestResult
guestResultOf(const ia32::State &st, const std::string &console,
              bool exited, int32_t exit_code, uint64_t guest_insns)
{
    GuestResult r;
    r.exited = exited;
    r.exit_code = exit_code;
    r.guest_insns = guest_insns;

    uint64_t h = fnv_offset;
    for (uint32_t g : st.gpr)
        fnv(h, &g, sizeof(g));
    fnv(h, &st.eip, sizeof(st.eip));
    fnv(h, &st.eflags, sizeof(st.eflags));
    // FP stack slots are hashed as double bit patterns: long double
    // objects carry 6 padding bytes of indeterminate value.
    for (int i = 0; i < 8; ++i) {
        double d = static_cast<double>(st.fpu.st[i]);
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        fnv(h, &bits, sizeof(bits));
        uint8_t tag = static_cast<uint8_t>(st.fpu.tag[i]);
        fnv(h, &tag, sizeof(tag));
    }
    fnv(h, &st.fpu.top, sizeof(st.fpu.top));
    fnv(h, &st.fpu.control, sizeof(st.fpu.control));
    fnv(h, &st.fpu.status, sizeof(st.fpu.status));
    for (const ia32::XmmReg &x : st.xmm)
        fnv(h, x.bytes.data(), x.bytes.size());
    fnv(h, &st.mxcsr, sizeof(st.mxcsr));
    r.state_hash = h;

    uint64_t ch = fnv_offset;
    fnv(ch, console.data(), console.size());
    r.console_hash = ch;
    return r;
}

Attribution
attributionOf(Runtime &rt)
{
    const ipf::Machine &m = rt.machine();
    const ipf::BucketStats &st = m.stats();
    double fault_overhead = rt.faultOverheadCycles();

    // Misalignment penalties were charged into the bucket of the
    // faulting instruction; pull them out of each bucket and pool them
    // with the runtime's guard-repair overhead. Every subtraction
    // re-appears as an addition in fault_handling, and all values are
    // integer-valued doubles, so total() reproduces the machine's
    // bucket sum exactly.
    Attribution a;
    a.cold_code = bucketCycles(st, Bucket::Cold) -
                  misalignIn(m, Bucket::Cold);
    a.hot_code =
        bucketCycles(st, Bucket::Hot) - misalignIn(m, Bucket::Hot);
    a.btgeneric = bucketCycles(st, Bucket::Overhead) -
                  misalignIn(m, Bucket::Overhead) - fault_overhead;
    a.native = bucketCycles(st, Bucket::Native) -
               misalignIn(m, Bucket::Native);
    a.idle =
        bucketCycles(st, Bucket::Idle) - misalignIn(m, Bucket::Idle);
    double misalign_total = 0;
    for (double c : m.misalignCycles())
        misalign_total += c;
    a.fault_handling = misalign_total + fault_overhead;
    return a;
}

std::string
runReportJson(Runtime &rt, const std::string &workload,
              const GuestResult *guest,
              const buildinfo::ProducerStamp *producer)
{
    ipf::Machine &m = rt.machine();
    const ipf::BucketStats &st = m.stats();
    Attribution a = attributionOf(rt);

    json::Writer w;
    w.beginObject();
    w.kv("kind", "el-report");
    w.kv("version", 1);
    if (producer)
        buildinfo::writeStamp(w, *producer);
    w.kv("workload", workload);
    w.kv("cycles", m.totalCycles());
    w.kv("retired_ipf_insns", m.retired());
    w.kv("misaligned_accesses", m.misalignedAccesses());

    w.key("attribution");
    w.beginObject();
    w.kv("cold_code", a.cold_code);
    w.kv("hot_code", a.hot_code);
    w.kv("btgeneric", a.btgeneric);
    w.kv("fault_handling", a.fault_handling);
    w.kv("native", a.native);
    w.kv("idle", a.idle);
    w.kv("total", a.total());
    w.endObject();

    w.key("buckets");
    w.beginObject();
    static const char *bucket_names[] = {"hot", "cold", "overhead",
                                         "native", "idle"};
    for (size_t b = 0;
         b < static_cast<size_t>(Bucket::NumBuckets); ++b) {
        w.key(bucket_names[b]);
        w.beginObject();
        w.kv("cycles", st.cycles[b]);
        w.kv("insns", st.insns[b]);
        w.endObject();
    }
    w.endObject();

    if (guest) {
        // The architectural outcome, isolated from every timing-model
        // scalar above: warm-vs-cold CI comparisons diff exactly this
        // object (cycles legitimately differ; guest results must not).
        w.key("guest");
        w.beginObject();
        w.kv("exited", guest->exited);
        w.kv("exit_code", static_cast<int64_t>(guest->exit_code));
        w.kv("state_hash", strfmt("%016llx",
                                  static_cast<unsigned long long>(
                                      guest->state_hash)));
        w.kv("console_hash", strfmt("%016llx",
                                    static_cast<unsigned long long>(
                                        guest->console_hash)));
        w.kv("guest_insns", guest->guest_insns);
        w.endObject();
    }

    // One merged counter namespace (translator + runtime counters are
    // disjoint today; merging keeps the JSON free of duplicate keys if
    // that ever changes). The artifact store's persist.* counters join
    // them when a store is attached.
    StatGroup all_stats = rt.translator().stats;
    all_stats.merge(rt.stats());
    if (rt.options().persist)
        all_stats.merge(rt.options().persist->stats);
    // Observer overflow counters: a nonzero value flags a report whose
    // event streams are incomplete (rings overflowed), which is the
    // first thing to check before trusting a trace or profile.
    if (rt.options().trace)
        all_stats.set("trace.dropped_events",
                      static_cast<double>(rt.options().trace->dropped()));
    if (rt.options().profiler)
        all_stats.set("profile.dropped_samples",
                      static_cast<double>(
                          rt.options().profiler->samplesDropped()));
    if (rt.flight())
        all_stats.set("flight.dropped_events",
                      static_cast<double>(rt.flight()->dropped()));
    w.key("stats");
    w.beginObject();
    for (const auto &[name, value] : all_stats.all())
        w.kv(name, value);
    w.endObject();

    if (m.trackBlockCycles()) {
        w.key("blocks");
        w.beginArray();
        for (const auto &[id, cost] : m.blockCosts()) {
            w.beginObject();
            w.kv("id", id);
            const BlockInfo *bi = rt.translator().blockById(id);
            if (bi) {
                w.kv("eip", static_cast<uint64_t>(bi->entry_eip));
                w.kv("kind",
                     bi->kind == BlockKind::Hot ? "hot" : "cold");
            } else {
                // id -1: runtime-emitted stub code with no block.
                w.kv("kind", "runtime");
            }
            w.kv("cycles", cost.cycles);
            w.kv("insns", cost.insns);
            w.endObject();
        }
        w.endArray();
    }

    w.endObject();
    return w.str() + "\n";
}

bool
writeRunReport(Runtime &rt, const std::string &workload,
               const std::string &path, const GuestResult *guest,
               const buildinfo::ProducerStamp *producer)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << runReportJson(rt, workload, guest, producer);
    return static_cast<bool>(f);
}

namespace
{

const char *
insnKindName(prof::InsnKind k)
{
    switch (k) {
      case prof::InsnKind::Plain: return "plain";
      case prof::InsnKind::Cond: return "cond";
      case prof::InsnKind::Jump: return "jump";
      case prof::InsnKind::CallDirect: return "call";
      case prof::InsnKind::Indirect: return "indirect";
      case prof::InsnKind::Stop: return "stop";
    }
    return "?";
}

} // namespace

std::string
profileJson(Runtime &rt, const prof::Profiler &prof,
            const std::string &workload,
            const buildinfo::ProducerStamp *producer)
{
    ipf::Machine &m = rt.machine();

    json::Writer w;
    w.beginObject();
    w.kv("kind", "el-profile");
    w.kv("version", 1);
    if (producer)
        buildinfo::writeStamp(w, *producer);
    w.kv("workload", workload);
    w.kv("cycles", m.totalCycles());

    const prof::Config &cfg = prof.config();
    w.key("config");
    w.beginObject();
    w.kv("topk", cfg.topk);
    w.kv("sample_period", cfg.sample_period);
    w.kv("ring_capacity", static_cast<uint64_t>(cfg.ring_capacity));
    w.endObject();

    w.key("counters");
    w.beginObject();
    StatGroup prof_counters = prof.counters();
    for (const auto &[name, value] : prof_counters.all())
        w.kv(name, value);
    w.endObject();

    // Per-translation costs joined onto canonical guest entries. A
    // canonical block may have several translations (cold variants,
    // misalignment stages, a hot trace rooted at it).
    std::map<uint32_t, std::vector<const BlockInfo *>> xlate_at;
    if (m.trackBlockCycles()) {
        for (const auto &bi : rt.translator().allBlocks())
            if (bi && m.blockCosts().count(bi->id))
                xlate_at[bi->entry_eip].push_back(bi.get());
    }

    w.key("blocks");
    w.beginArray();
    for (const auto &[entry, b] : prof.blocks()) {
        w.beginObject();
        w.kv("entry", static_cast<uint64_t>(entry));
        auto ex = prof.blockExecs().find(entry);
        w.kv("execs", ex == prof.blockExecs().end() ? uint64_t(0)
                                                    : ex->second);
        w.kv("insns", static_cast<uint64_t>(b.insns));
        w.kv("term", insnKindName(b.kind));
        w.kv("term_ip", static_cast<uint64_t>(b.term_ip));

        w.key("disasm");
        w.beginArray();
        uint32_t ip = entry;
        for (uint32_t k = 0; k < b.insns; ++k) {
            ia32::Insn insn;
            if (!ia32::decode(rt.memory(), ip, &insn)) {
                w.str(strfmt("%08x: (undecodable)", ip));
                break;
            }
            w.str(insn.toString());
            ip = insn.next();
        }
        w.endArray();

        auto xl = xlate_at.find(entry);
        if (xl != xlate_at.end()) {
            w.key("xlate");
            w.beginArray();
            for (const BlockInfo *bi : xl->second) {
                const ipf::BlockCost &cost =
                    m.blockCosts().at(bi->id);
                w.beginObject();
                w.kv("id", bi->id);
                w.kv("kind",
                     bi->kind == BlockKind::Hot ? "hot" : "cold");
                w.kv("origin",
                     bi->loaded_from_store ? "loaded" : "local");
                w.kv("cycles", cost.cycles);
                w.kv("ipf_insns", cost.insns);
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();

    w.key("cond_sites");
    w.beginArray();
    for (const auto &[ip, cs] : prof.condSites()) {
        w.beginObject();
        w.kv("ip", static_cast<uint64_t>(ip));
        w.kv("taken_eip", static_cast<uint64_t>(cs.taken_eip));
        w.kv("fall_eip", static_cast<uint64_t>(cs.fall_eip));
        w.kv("taken", cs.taken);
        w.kv("fall", cs.fall);
        w.kv("via_link", cs.via_link);
        w.kv("via_dispatch", cs.via_dispatch);
        w.endObject();
    }
    w.endArray();

    w.key("indirect_sites");
    w.beginArray();
    for (const auto &[ip, site] : prof.indirectSites()) {
        w.beginObject();
        w.kv("ip", static_cast<uint64_t>(ip));
        w.kv("execs", site.execs);
        w.kv("hits", site.hits);
        w.kv("misses", site.misses);
        w.kv("evictions", site.evictions);
        w.key("targets");
        w.beginArray();
        for (const prof::TargetCount &tc : site.targets) {
            w.beginObject();
            w.kv("eip", static_cast<uint64_t>(tc.target));
            w.kv("count", tc.count);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("samples");
    w.beginObject();
    w.kv("period", cfg.sample_period);
    w.kv("dropped", prof.samplesDropped());
    w.key("series");
    w.beginArray();
    for (const prof::Sample &s : prof.samples()) {
        w.beginObject();
        w.kv("cycle", s.cycle);
        w.kv("dispatch_lookups", s.dispatch_lookups);
        w.kv("cache_occupancy", s.cache_occupancy);
        w.kv("hot_queue_depth", s.hot_queue_depth);
        w.kv("worker_inflight", s.worker_inflight);
        w.kv("fault_fires", s.fault_fires);
        w.kv("profile_events", s.profile_events);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
    return w.str() + "\n";
}

bool
writeProfile(Runtime &rt, const prof::Profiler &prof,
             const std::string &workload, const std::string &path,
             const buildinfo::ProducerStamp *producer)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << profileJson(rt, prof, workload, producer);
    return static_cast<bool>(f);
}

} // namespace el::core
