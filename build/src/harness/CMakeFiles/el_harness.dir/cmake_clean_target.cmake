file(REMOVE_RECURSE
  "libel_harness.a"
)
