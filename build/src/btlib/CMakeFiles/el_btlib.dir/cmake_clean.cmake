file(REMOVE_RECURSE
  "CMakeFiles/el_btlib.dir/btos.cc.o"
  "CMakeFiles/el_btlib.dir/btos.cc.o.d"
  "CMakeFiles/el_btlib.dir/os_sim.cc.o"
  "CMakeFiles/el_btlib.dir/os_sim.cc.o.d"
  "libel_btlib.a"
  "libel_btlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/el_btlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
