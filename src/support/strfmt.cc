#include "support/strfmt.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace el
{

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return {};
    }
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace el
