/**
 * @file
 * Tests for the online execution profiler: architectural counters must
 * be bit-identical across translation-thread counts, attaching the
 * profiler (and the tracer alongside it) must never perturb simulated
 * cycles, the indirect value profiles must cross-validate against the
 * runtime's own fast-lookup statistics, the sampler ring must bound its
 * memory, and the profile JSON must parse with the documented schema.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/report.hh"
#include "guest/workloads.hh"
#include "harness/exec.hh"
#include "support/json.hh"
#include "support/profile.hh"
#include "support/strfmt.hh"
#include "support/trace.hh"

namespace el
{
namespace
{

core::Options
profOpts(unsigned threads, prof::Profiler *profiler)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = threads;
    o.deterministic_adoption = threads > 0;
    o.profiler = profiler;
    return o;
}

guest::Workload
gzipWorkload()
{
    guest::WorkloadParams p;
    p.outer_iters = 60;
    p.size = 24000;
    return guest::buildStream("gzip", p);
}

guest::Workload
craftyWorkload()
{
    guest::WorkloadParams p;
    p.outer_iters = 40;
    p.size = 9000;
    p.indirect_every = 1; // ret-heavy with an indirect dispatch loop
    return guest::buildBranchy("crafty", p);
}

guest::Workload
parserWorkload()
{
    guest::WorkloadParams p;
    p.outer_iters = 60;
    p.size = 20000;
    return guest::buildParser("parser", p);
}

/**
 * Stable text encoding of every architectural counter the profiler
 * guarantees across thread counts: block executions, conditional
 * taken/fall edges, and the full indirect value profiles. The
 * via_link/via_dispatch diagnostics and the sampled gauges are
 * deliberately excluded — they reflect translation phase and adoption
 * timing, which legitimately differ.
 */
std::string
profSignature(const prof::Profiler &p)
{
    std::string s;
    for (const auto &[entry, execs] : p.blockExecs())
        s += strfmt("B %08x %llu\n", entry,
                    static_cast<unsigned long long>(execs));
    for (const auto &[ip, cs] : p.condSites())
        s += strfmt("C %08x t=%08x f=%08x %llu %llu\n", ip, cs.taken_eip,
                    cs.fall_eip,
                    static_cast<unsigned long long>(cs.taken),
                    static_cast<unsigned long long>(cs.fall));
    for (const auto &[ip, site] : p.indirectSites()) {
        s += strfmt("I %08x %llu %llu %llu %llu\n", ip,
                    static_cast<unsigned long long>(site.execs),
                    static_cast<unsigned long long>(site.hits),
                    static_cast<unsigned long long>(site.misses),
                    static_cast<unsigned long long>(site.evictions));
        for (const prof::TargetCount &t : site.targets)
            s += strfmt("  -> %08x %llu\n", t.target,
                        static_cast<unsigned long long>(t.count));
    }
    s += strfmt("events %llu\n",
                static_cast<unsigned long long>(p.eventCount()));
    return s;
}

// ----- the zero-overhead contract ---------------------------------------

TEST(Profile, ProfilerOffCyclesBitIdentical)
{
    guest::Workload w = gzipWorkload();
    for (unsigned threads : {0u, 4u}) {
        prof::Profiler p;
        harness::TranslatedRun profiled = harness::runTranslated(
            w.image, w.params.abi, profOpts(threads, &p));
        harness::TranslatedRun plain = harness::runTranslated(
            w.image, w.params.abi, profOpts(threads, nullptr));
        ASSERT_TRUE(profiled.outcome.exited);
        EXPECT_EQ(profiled.outcome.cycles, plain.outcome.cycles)
            << "threads " << threads;
        EXPECT_EQ(profiled.outcome.exit_code, plain.outcome.exit_code);
        EXPECT_GT(p.eventCount(), 0u);
    }
}

TEST(Profile, TracerAndProfilerTogetherCyclesBitIdentical)
{
    guest::Workload w = craftyWorkload();
    prof::Profiler p;
    trace::Tracer t;
    core::Options both = profOpts(4, &p);
    both.trace = &t;
    harness::TranslatedRun on =
        harness::runTranslated(w.image, w.params.abi, both);
    harness::TranslatedRun off = harness::runTranslated(
        w.image, w.params.abi, profOpts(4, nullptr));
    ASSERT_TRUE(on.outcome.exited);
    EXPECT_EQ(on.outcome.cycles, off.outcome.cycles);
    EXPECT_EQ(on.outcome.exit_code, off.outcome.exit_code);
}

// ----- cross-thread-count determinism -----------------------------------

TEST(Profile, CountersIdenticalAcrossThreadCounts)
{
    for (const guest::Workload &w :
         {gzipWorkload(), craftyWorkload()}) {
        std::string ref;
        for (unsigned threads : {0u, 1u, 4u}) {
            prof::Profiler p;
            harness::TranslatedRun r = harness::runTranslated(
                w.image, w.params.abi, profOpts(threads, &p));
            ASSERT_TRUE(r.outcome.exited)
                << w.name << " threads " << threads;
            // The canonical chain walk must never lose its place on
            // these workloads — any break would silently undercount.
            EXPECT_EQ(p.walkBreaks(), 0u) << w.name;
            EXPECT_EQ(p.lostEvents(), 0u) << w.name;
            std::string sig = profSignature(p);
            EXPECT_FALSE(sig.empty());
            if (threads == 0)
                ref = sig;
            else
                EXPECT_EQ(ref, sig)
                    << w.name << " diverged at " << threads
                    << " threads";
        }
    }
}

// ----- indirect value profiles vs runtime statistics ---------------------

TEST(Profile, IndirectProfileCrossValidatesAgainstStats)
{
    guest::Workload w = parserWorkload();
    prof::Profiler p;
    harness::TranslatedRun r = harness::runTranslated(
        w.image, w.params.abi, profOpts(0, &p));
    ASSERT_TRUE(r.outcome.exited);
    ASSERT_FALSE(p.indirectSites().empty());

    // Every profiler-observed fast-lookup miss is an IndirectMiss exit
    // the runtime serviced, and vice versa — the totals match exactly.
    uint64_t prof_misses = 0, prof_execs = 0;
    for (const auto &[ip, site] : p.indirectSites()) {
        prof_misses += site.misses;
        prof_execs += site.execs;
        EXPECT_EQ(site.execs, site.hits + site.misses);
    }
    EXPECT_EQ(prof_misses, r.runtime->stats().get("exits.indirect_miss"));
    ASSERT_GT(prof_execs, 0u);

    // The hottest site's dominant target must explain at least the
    // fast-lookup hit rate: the lookup cache can only hit targets the
    // value profile also saw.
    const prof::IndirectSite *top = nullptr;
    for (const auto &[ip, site] : p.indirectSites())
        if (!top || site.execs > top->execs)
            top = &site;
    ASSERT_NE(top, nullptr);
    ASSERT_FALSE(top->targets.empty());
    uint64_t dominant = 0;
    for (const prof::TargetCount &t : top->targets)
        dominant = std::max(dominant, t.count);
    double dominant_share = static_cast<double>(dominant) /
                            static_cast<double>(top->execs);
    double hit_rate = 1.0 - static_cast<double>(prof_misses) /
                                static_cast<double>(prof_execs);
    EXPECT_GE(dominant_share, hit_rate);
}

// ----- sampler -----------------------------------------------------------

TEST(Profile, SamplerRingBoundsMemoryAndDropsOldest)
{
    guest::Workload w = gzipWorkload();
    prof::Config cfg;
    cfg.sample_period = 1000;
    cfg.ring_capacity = 4;
    prof::Profiler p(cfg);
    harness::TranslatedRun r = harness::runTranslated(
        w.image, w.params.abi, profOpts(0, &p));
    ASSERT_TRUE(r.outcome.exited);
    EXPECT_LE(p.samples().size(), 4u);
    EXPECT_GT(p.samplesDropped(), 0u);
    uint64_t prev = 0;
    for (const prof::Sample &s : p.samples()) {
        EXPECT_GT(s.cycle, prev); // period boundaries, increasing
        EXPECT_EQ(s.cycle % cfg.sample_period, 0u);
        prev = s.cycle;
    }
}

// ----- export ------------------------------------------------------------

TEST(Profile, ProfileJsonParsesWithSchema)
{
    guest::Workload w = craftyWorkload();
    prof::Profiler p;
    core::Options o = profOpts(4, &p);
    o.collect_block_cycles = true;
    harness::TranslatedRun r =
        harness::runTranslated(w.image, w.params.abi, o);
    ASSERT_TRUE(r.outcome.exited);

    std::string text = core::profileJson(*r.runtime, p, w.name);
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::Parser::parse(text, &v, &error)) << error;

    EXPECT_EQ(v.strOr("kind", ""), "el-profile");
    EXPECT_EQ(v.numberOr("version", 0), 1);
    EXPECT_EQ(v.strOr("workload", ""), w.name);
    EXPECT_EQ(v.numberOr("cycles", -1), r.outcome.cycles);

    const json::Value *blocks = v.find("blocks");
    ASSERT_NE(blocks, nullptr);
    ASSERT_TRUE(blocks->isArray());
    ASSERT_FALSE(blocks->arr.empty());
    bool any_xlate = false, any_disasm = false;
    for (const json::Value &b : blocks->arr) {
        const json::Value *disasm = b.find("disasm");
        ASSERT_NE(disasm, nullptr);
        any_disasm |= !disasm->arr.empty();
        if (b.find("xlate"))
            any_xlate = true;
    }
    EXPECT_TRUE(any_disasm);
    EXPECT_TRUE(any_xlate); // collect_block_cycles joins IPF costs

    for (const char *key : {"cond_sites", "indirect_sites"}) {
        const json::Value *arr = v.find(key);
        ASSERT_NE(arr, nullptr) << key;
        EXPECT_TRUE(arr->isArray()) << key;
        EXPECT_FALSE(arr->arr.empty()) << key;
    }

    const json::Value *samples = v.find("samples");
    ASSERT_NE(samples, nullptr);
    const json::Value *series = samples->find("series");
    ASSERT_NE(series, nullptr);
    EXPECT_TRUE(series->isArray());
    EXPECT_FALSE(series->arr.empty());

    const json::Value *counters = v.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->numberOr("prof.walk_breaks", -1), 0);
    EXPECT_EQ(counters->numberOr("prof.lost_events", -1), 0);
}

} // namespace
} // namespace el
