/**
 * @file
 * Chaos tests for the recovery paths: seeded fault injection drives
 * BTOS allocation failures, translation aborts, synthetic code-cache
 * exhaustion and guest fault storms through a bounded code cache, and
 * every run must still produce bit-exact architectural state against
 * the reference interpreter (which always runs injection-free).
 *
 * The directed tests pin each recovery path individually via the
 * recover.* stats counters; the parameterized sweep then runs many
 * seeds of everything-at-once chaos.
 */

#include <gtest/gtest.h>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "guest/workloads.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"
#include "support/faultinject.hh"
#include "support/random.hh"

namespace el
{
namespace
{

using btlib::OsAbi;
using guest::Layout;
using namespace ia32;

/**
 * A multi-phase workload: several independent hot loops over private
 * arenas, sized so a bounded code cache must flush at least once, then
 * an arena checksum as the exit code. Deterministic per seed.
 */
guest::Image
chaosProgram(uint64_t seed)
{
    Rng rng(seed);
    Assembler as(Layout::code_base);
    static const Reg pool[3] = {RegEax, RegEdx, RegEsi};

    for (int r = 0; r < 3; ++r)
        as.movRI(pool[r], static_cast<uint32_t>(rng.next()));

    const unsigned phases = 4;
    for (unsigned ph = 0; ph < phases; ++ph) {
        as.movRI(RegEbx, Layout::data_base + ph * 0x400);
        as.movRI(RegEcx, 60 + static_cast<uint32_t>(rng.range(60)));
        Label top = as.label();
        as.bind(top);
        unsigned body = 6 + static_cast<unsigned>(rng.range(12));
        for (unsigned k = 0; k < body; ++k) {
            Reg r1 = pool[rng.range(3)];
            Reg r2 = pool[rng.range(3)];
            int32_t off = static_cast<int32_t>(rng.range(64)) * 4;
            switch (rng.range(8)) {
              case 0:
                as.aluRR(Op::Add, r1, r2);
                break;
              case 1:
                as.aluRI(Op::Xor, r1, static_cast<int32_t>(rng.next()));
                break;
              case 2:
                as.movMR(memb(RegEbx, off), r1);
                break;
              case 3:
                as.movRM(r1, memb(RegEbx, off));
                break;
              case 4:
                as.imulRR(r1, r2);
                break;
              case 5: {
                as.aluRI(Op::Cmp, r1,
                         static_cast<int32_t>(rng.range(256)));
                Label skip = as.label();
                as.jcc(static_cast<Cond>(rng.range(16)), skip);
                as.aluRI(Op::Add, r2, 1);
                as.bind(skip);
                break;
              }
              case 6:
                as.shiftRI(Op::Shl, r1,
                           static_cast<uint8_t>(1 + rng.range(7)));
                break;
              default:
                as.aluRM(Op::Add, r1, memb(RegEbx, off));
                break;
            }
        }
        as.decR(RegEcx);
        as.jcc(Cond::NE, top);
    }

    // Checksum the first arena into eax; exit with it.
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEsi, 64);
    as.movRI(RegEax, 0);
    Label sum = as.label();
    as.bind(sum);
    as.aluRM(Op::Add, RegEax, membi(RegEbx, RegEsi, 4, -4));
    as.decR(RegEsi);
    as.jcc(Cond::NE, sum);
    as.aluRI(Op::And, RegEax, 0xff);
    as.movRR(RegEbx, RegEax);
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.intN(btlib::linux_abi::int_vector);

    guest::Image img;
    img.name = "chaos";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish());
    img.addData(Layout::data_base, 0x2000);
    return img;
}

/** Translated run must match the (injection-free) interpreter exactly. */
void
expectMatchesReference(const harness::Outcome &ref,
                       const harness::Outcome &got, uint64_t seed)
{
    ASSERT_EQ(ref.exited, got.exited) << "seed " << seed;
    ASSERT_EQ(ref.faulted, got.faulted) << "seed " << seed;
    if (ref.exited)
        EXPECT_EQ(ref.exit_code, got.exit_code) << "seed " << seed;
    if (ref.faulted) {
        EXPECT_EQ(ref.fault.kind, got.fault.kind) << "seed " << seed;
        EXPECT_EQ(ref.fault.eip, got.fault.eip) << "seed " << seed;
    }
    EXPECT_EQ(ref.console, got.console) << "seed " << seed;
    std::string why;
    EXPECT_TRUE(ref.final_state.equalsArch(got.final_state, &why))
        << "seed " << seed << ": " << why;
}

// ----- directed recovery-path tests ---------------------------------

TEST(ChaosDirected, CacheFlushGenerationExercised)
{
    // No injection at all: a bounded cache alone must force the
    // flush-and-retranslate GC and still compute the right answer.
    guest::Image img = chaosProgram(1);
    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Linux);

    core::Options o;
    o.heat_threshold = 8;
    o.hot_batch = 1;
    o.code_cache_capacity = 1024;
    o.cache_headroom = 512;
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, o);
    expectMatchesReference(ref, tr.outcome, 1);

    uint64_t flushes =
        tr.runtime->translator().stats.get("recover.cache_flush");
    EXPECT_GE(flushes, 1u);
    EXPECT_EQ(tr.runtime->codeCache().generation(), flushes);
    EXPECT_LE(tr.runtime->codeCache().highWater(),
              o.code_cache_capacity);
}

TEST(ChaosDirected, ColdAbortFallsBackToInterpreter)
{
    // Every cold translation aborts until the firing budget runs out;
    // each abort must be absorbed by the interpreter fallback.
    guest::Image img = chaosProgram(2);
    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Linux);

    core::Options o;
    o.enable_hot_phase = false;
    o.fault.seed = 22;
    o.fault.site(FaultSite::ColdXlateAbort, 1024);
    o.fault.max_fires = 6;
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, o);
    expectMatchesReference(ref, tr.outcome, 2);

    EXPECT_EQ(tr.runtime->stats().get("recover.xlate_abort"), 6u);
    EXPECT_GE(tr.runtime->stats().get("recover.interp_steps"), 6u);
    EXPECT_EQ(
        tr.runtime->translator().stats.get("xlate.cold_aborts_injected"),
        6u);
}

TEST(ChaosDirected, HotAbortsArePinnedCold)
{
    // Every hot session aborts, forever: after hot_retry_limit failed
    // sessions a block must be pinned cold instead of retried on every
    // threshold crossing.
    guest::Image img = chaosProgram(3);
    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Linux);

    core::Options o;
    o.heat_threshold = 8;
    o.hot_batch = 1;
    o.hot_retry_limit = 2;
    o.fault.seed = 33;
    o.fault.site(FaultSite::HotXlateAbort, 1024);
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, o);
    expectMatchesReference(ref, tr.outcome, 3);

    EXPECT_GE(tr.runtime->stats().get("recover.hot_abort"), 2u);
    EXPECT_GE(tr.runtime->stats().get("recover.hot_pinned"), 1u);
    EXPECT_EQ(tr.runtime->translator().stats.get("xlate.hot_blocks"), 0u);
}

TEST(ChaosDirected, BtosAllocRetriesThenSucceeds)
{
    // The runtime-area allocation fails a few times, then the firing
    // budget runs out and the retry loop succeeds.
    guest::Image img = chaosProgram(4);
    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Linux);

    core::Options o;
    o.fault.seed = 44;
    o.fault.site(FaultSite::BtosAlloc, 1024);
    o.fault.max_fires = 3;
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, o);
    expectMatchesReference(ref, tr.outcome, 4);

    EXPECT_EQ(tr.runtime->stats().get("recover.btos_alloc_fail"), 3u);
    EXPECT_TRUE(tr.runtime->initOk());
}

TEST(ChaosDirected, BtosAllocExhaustionIsInitError)
{
    // When every allocation attempt fails, the runtime must degrade to
    // a clean InitError — not assert.
    mem::Memory mem;
    std::unique_ptr<btlib::SimOsBase> os =
        harness::makeOs(OsAbi::Linux, mem);

    core::Options o;
    o.fault.seed = 55;
    o.fault.site(FaultSite::BtosAlloc, 1024); // unlimited budget
    core::Runtime rt(mem, os->vtable(), o);
    EXPECT_FALSE(rt.initOk());
    EXPECT_EQ(rt.stats().get("recover.btos_alloc_fail"),
              static_cast<uint64_t>(o.btos_alloc_retries));

    ia32::State state;
    core::RunResult res = rt.run(state);
    EXPECT_EQ(res.kind, core::RunResult::Kind::InitError);
}

TEST(ChaosDirected, StormFaultsAreTransparent)
{
    // Injected transient guest faults during the interpreter fallback
    // must be retried, never delivered to the guest.
    guest::Image img = chaosProgram(5);
    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Linux);

    core::Options o;
    o.enable_hot_phase = false;
    o.fault.seed = 66;
    o.fault.site(FaultSite::ColdXlateAbort, 1024);
    o.fault.site(FaultSite::GuestFaultStorm, 512);
    o.fault.max_fires = 40;
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, o);
    expectMatchesReference(ref, tr.outcome, 5);

    EXPECT_GE(tr.runtime->stats().get("recover.storm_fault"), 1u);
    EXPECT_GE(tr.runtime->stats().get("recover.interp_steps"), 1u);
}

// ----- precise exception state, both OS personalities ----------------

/**
 * Mid-block fault delivery with precise state, on both SimLinux and
 * SimWindows. The signal-storm personality faults a few instructions
 * into a loop body with live register updates in flight; its handler
 * folds the delivered fault kind, address and EIP into the exit
 * checksum, so any imprecision in the reconstructed state — or any
 * divergence between the two OS personalities' delivery paths and the
 * interpreter's — changes the final answer.
 */
TEST(PreciseState, MidBlockFaultDeliveryMatchesOracle)
{
    for (OsAbi abi : {OsAbi::Linux, OsAbi::Windows}) {
        guest::WorkloadParams p;
        p.outer_iters = 12;
        p.size = 64;
        p.abi = abi;
        guest::Workload w = guest::buildSignalStorm("storm_precise", p);
        harness::Outcome ref = harness::runInterpreter(w.image, abi);
        ASSERT_TRUE(ref.exited);

        harness::TranslatedRun tr =
            harness::runTranslated(w.image, abi);
        expectMatchesReference(ref, tr.outcome,
                               abi == OsAbi::Linux ? 100 : 101);
        // The storm really stormed: a dense stream of delivered faults,
        // every one raised from the middle of a translated block.
        EXPECT_GE(tr.runtime->stats().get("faults.delivered"), 100u)
            << (abi == OsAbi::Linux ? "linux" : "windows");
    }
}

TEST(PreciseState, MidBlockFaultFromHotCodeMatchesOracle)
{
    // Same storm, but with the loop re-heated so faults are raised from
    // *hot* translations: delivery must reconstruct precise state via
    // the recovery maps, synchronously and with pipeline workers.
    for (OsAbi abi : {OsAbi::Linux, OsAbi::Windows}) {
        guest::WorkloadParams p;
        p.outer_iters = 16;
        p.size = 96;
        p.abi = abi;
        guest::Workload w = guest::buildSignalStorm("storm_hot", p);
        harness::Outcome ref = harness::runInterpreter(w.image, abi);
        ASSERT_TRUE(ref.exited);

        for (unsigned threads : {0u, 4u}) {
            core::Options o;
            o.heat_threshold = 16;
            o.hot_batch = 1;
            o.translation_threads = threads;
            o.deterministic_adoption = threads > 0;
            harness::TranslatedRun tr =
                harness::runTranslated(w.image, abi, o);
            expectMatchesReference(ref, tr.outcome, 102 + threads);
            EXPECT_GE(tr.runtime->stats().get("faults.delivered"), 100u);
            EXPECT_GE(
                tr.runtime->translator().stats.get("xlate.hot_blocks"),
                1u)
                << "storm never re-heated; the test lost its point";
        }
    }
}

// ----- the everything-at-once chaos sweep ---------------------------

class ChaosRecovery : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ChaosRecovery, SurvivesInjectionBitExact)
{
    const uint64_t seed = GetParam();
    guest::Image img = chaosProgram(seed);

    // Reference first: no Runtime alive, so no injector is installed
    // and the oracle always runs clean.
    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Linux);

    core::Options o;
    o.heat_threshold = 8;
    o.hot_batch = 1;
    o.hot_retry_limit = 2;
    o.code_cache_capacity = 1536;
    o.cache_headroom = 768;
    o.fault.seed = 0x9e3779b97f4a7c15ull ^ seed;
    o.fault.site(FaultSite::BtosAlloc, 200)
        .site(FaultSite::ColdXlateAbort, 96)
        .site(FaultSite::HotXlateAbort, 300)
        .site(FaultSite::CacheExhaust, 32)
        .site(FaultSite::GuestFaultStorm, 128);
    o.fault.max_fires = 64;

    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, o);
    expectMatchesReference(ref, tr.outcome, seed);

    // The bounded cache must honour its cap and must have gone through
    // at least one flush-and-retranslate generation.
    const ipf::CodeCache &cache = tr.runtime->codeCache();
    EXPECT_LE(cache.highWater(), o.code_cache_capacity)
        << "seed " << seed;
    EXPECT_GE(cache.generation(), 1u) << "seed " << seed;
    EXPECT_GE(tr.runtime->translator().stats.get("recover.cache_flush"),
              1u)
        << "seed " << seed;

    // Injection actually happened (the config is hot enough that every
    // seed fires something), and the injector saw traffic.
    const FaultInjector *fi = tr.runtime->faultInjector();
    ASSERT_NE(fi, nullptr);
    EXPECT_GT(fi->totalConsults(), 0u) << "seed " << seed;
    EXPECT_GT(fi->totalFires(), 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosRecovery,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace
} // namespace el
