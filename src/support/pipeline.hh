/**
 * @file
 * Generic asynchronous-pipeline primitives: a multi-producer
 * single-consumer-per-item work queue and a joinable worker pool.
 *
 * These are the building blocks of the hot-translation pipeline
 * (core/hot_pipeline.hh) but carry no translator knowledge, so future
 * subsystems (sharded dispatch, persistent-cache writeback) can reuse
 * them. Everything here is synchronized with a mutex + condition
 * variable; the performance-sensitive determinism machinery (simulated
 * worker timelines) lives with the consumer, not here.
 */

#ifndef EL_SUPPORT_PIPELINE_HH
#define EL_SUPPORT_PIPELINE_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace el::support
{

/**
 * Bounded-free MPSC-style work queue. Multiple producers may push;
 * any number of workers may pop (each item is delivered exactly once).
 * close() wakes every blocked pop, which then drains remaining items
 * and finally returns false.
 */
template <typename T>
class WorkQueue
{
  public:
    /** Enqueue one item (wakes one waiting worker). */
    void
    push(T item)
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
    }

    /**
     * Blocking pop: waits for an item or queue closure. Returns false
     * only when the queue is closed and fully drained.
     */
    bool
    pop(T *out)
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        *out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Non-blocking pop. */
    bool
    tryPop(T *out)
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (items_.empty())
            return false;
        *out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Close the queue: no further pushes are expected. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return items_.size();
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

/**
 * A fixed set of joinable threads. The body is invoked once per thread
 * with the worker index and is expected to loop until its input source
 * (typically a WorkQueue) is closed.
 */
class WorkerPool
{
  public:
    using Body = std::function<void(unsigned worker)>;

    WorkerPool() = default;
    ~WorkerPool() { join(); }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Spawn @p count threads running @p body(worker_index). */
    void start(unsigned count, Body body);

    /** Join every thread (idempotent). Close the input source first. */
    void join();

    unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  private:
    std::vector<std::thread> threads_;
};

} // namespace el::support

#endif // EL_SUPPORT_PIPELINE_HH
