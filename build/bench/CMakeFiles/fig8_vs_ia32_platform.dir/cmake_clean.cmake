file(REMOVE_RECURSE
  "CMakeFiles/fig8_vs_ia32_platform.dir/fig8_vs_ia32_platform.cc.o"
  "CMakeFiles/fig8_vs_ia32_platform.dir/fig8_vs_ia32_platform.cc.o.d"
  "fig8_vs_ia32_platform"
  "fig8_vs_ia32_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vs_ia32_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
