/**
 * @file
 * Unit tests for the translator's analysis and back end: region
 * discovery and block splitting, EFlags liveness, the scheduler's
 * group legality and renaming, plus BTLib (handshake, personalities)
 * and the guest loader.
 */

#include <gtest/gtest.h>

#include "btlib/os_sim.hh"
#include "core/analysis.hh"
#include "core/emit_env.hh"
#include "core/sched.hh"
#include "guest/image.hh"
#include "ia32/assembler.hh"
#include "ipf/machine.hh"

namespace el
{
namespace
{

using core::BasicBlock;
using core::Region;
using guest::Layout;
using namespace ia32;

void
loadCode(Assembler &as, mem::Memory *m)
{
    std::vector<uint8_t> code = as.finish();
    m->map(Layout::code_base, code.size() + 16, mem::PermRX);
    for (size_t k = 0; k < code.size(); ++k)
        m->writePriv(Layout::code_base + k, 1, code[k]);
}

TEST(Analysis, DiscoversDiamond)
{
    Assembler as(Layout::code_base);
    Label t = as.label(), j = as.label();
    as.testRR(RegEax, RegEax);     // block A
    as.jcc(Cond::E, t);
    as.incR(RegEbx);               // block F (fall)
    as.jmp(j);
    as.bind(t);
    as.decR(RegEbx);               // block T
    as.bind(j);
    as.ret();                      // block J
    mem::Memory m;
    loadCode(as, &m);

    Region r = core::discoverRegion(m, Layout::code_base, 8);
    EXPECT_GE(r.blocks.size(), 4u);
    const BasicBlock *a = r.find(Layout::code_base);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->insns.back().op, Op::Jcc);
    EXPECT_NE(r.find(a->taken), nullptr);
    EXPECT_NE(r.find(a->fall), nullptr);
}

TEST(Analysis, SplitsBlockAtBranchTarget)
{
    // A loop whose backedge lands mid-block forces a split.
    Assembler as(Layout::code_base);
    as.movRI(RegEcx, 10);   // head (target is the next insn)
    Label mid = as.label();
    as.bind(mid);
    as.incR(RegEax);
    as.decR(RegEcx);
    as.jcc(Cond::NE, mid);
    as.ret();
    mem::Memory m;
    loadCode(as, &m);
    Region r = core::discoverRegion(m, Layout::code_base, 8);
    // The entry block must now end exactly before `mid`.
    const BasicBlock *entry = r.find(Layout::code_base);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->insns.size(), 1u);
    EXPECT_NE(r.find(entry->fall), nullptr);
}

TEST(Analysis, FlagsLivenessKillsDeadFlags)
{
    // add (writes flags) immediately followed by another add: the first
    // add's flags are dead.
    Assembler as(Layout::code_base);
    as.aluRI(Op::Add, RegEax, 1);
    as.aluRI(Op::Add, RegEbx, 2);
    as.jcc(Cond::E, as.label()); // unbound is fine; finish() not called
    // Manually build a block instead (decode path requires finish()).
    Assembler as2(Layout::code_base);
    as2.aluRI(Op::Add, RegEax, 1);
    as2.aluRI(Op::Add, RegEbx, 2);
    Label out = as2.label();
    as2.jcc(Cond::E, out);
    as2.bind(out);
    as2.ret();
    mem::Memory m;
    loadCode(as2, &m);
    Region r = core::discoverRegion(m, Layout::code_base, 4);
    core::computeFlagsLiveness(r);
    const BasicBlock *b = r.find(Layout::code_base);
    ASSERT_NE(b, nullptr);
    std::vector<uint32_t> live =
        core::perInsnLiveFlags(*b, b->flags_live_out);
    // After insn 0 (add eax), ZF is not live (rewritten by insn 1).
    EXPECT_EQ(live[0] & FlagZf, 0u);
    // After insn 1 (add ebx), ZF is live (consumed by the je).
    EXPECT_NE(live[1] & FlagZf, 0u);
}

TEST(Sched, PacksIndependentOpsIntoOneGroup)
{
    core::Options opts;
    std::vector<core::Il> ils;
    for (int k = 0; k < 4; ++k) {
        core::Il il;
        il.ins.op = ipf::IpfOp::AddImm;
        il.dst = static_cast<int16_t>(core::vgr_base + k);
        il.src1 = ipf::gr_zero;
        il.ins.imm = k;
        ils.push_back(il);
    }
    {
        core::Il x;
        x.ins.op = ipf::IpfOp::Exit;
        x.ins.exit_reason = ipf::ExitReason::Halt;
        ils.push_back(x);
    }
    ipf::CodeCache cache;
    core::ScheduleResult res =
        core::schedule(ils, cache, opts, true, false, nullptr);
    ASSERT_TRUE(res.ok);
    // 4 independent A-ops -> one group; plus the exit group.
    EXPECT_LE(res.groups, 2u);
}

TEST(Sched, SplitsRawDependentOps)
{
    core::Options opts;
    std::vector<core::Il> ils;
    core::Il a;
    a.ins.op = ipf::IpfOp::AddImm;
    a.dst = core::vgr_base;
    a.src1 = ipf::gr_zero;
    a.ins.imm = 5;
    ils.push_back(a);
    core::Il b;
    b.ins.op = ipf::IpfOp::AddImm;
    b.dst = static_cast<int16_t>(core::vgr_base + 1);
    b.src1 = core::vgr_base; // RAW on a
    b.ins.imm = 1;
    ils.push_back(b);
    core::Il x;
    x.ins.op = ipf::IpfOp::Exit;
    x.ins.exit_reason = ipf::ExitReason::Halt;
    ils.push_back(x);

    ipf::CodeCache cache;
    core::ScheduleResult res =
        core::schedule(ils, cache, opts, false, false, nullptr);
    ASSERT_TRUE(res.ok);
    EXPECT_GE(res.groups, 2u);
    // Execute and verify the renamed code still computes 6.
    mem::Memory m;
    ipf::MachineConfig cfg;
    cfg.verify_groups = true;
    ipf::Machine mach(cache, m, cfg);
    ipf::StopInfo stop = mach.run(res.entry);
    EXPECT_EQ(stop.reason, ipf::ExitReason::Halt);
    // Find which physical register got the result of b.
    bool found = false;
    for (unsigned r = ipf::gr_rename_base;
         r < ipf::gr_rename_base + ipf::gr_rename_count; ++r) {
        if (mach.gr(r) == 6)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Sched, DeadIlsRemovedOnlyWhenReordering)
{
    core::Options opts;
    std::vector<core::Il> ils;
    core::Il dead;
    dead.ins.op = ipf::IpfOp::AddImm;
    dead.dst = core::vgr_base; // never read
    dead.src1 = ipf::gr_zero;
    dead.ins.imm = 9;
    ils.push_back(dead);
    core::Il x;
    x.ins.op = ipf::IpfOp::Exit;
    x.ins.exit_reason = ipf::ExitReason::Halt;
    ils.push_back(x);

    ipf::CodeCache c1, c2;
    core::ScheduleResult hot =
        core::schedule(ils, c1, opts, true, false, nullptr);
    core::ScheduleResult cold =
        core::schedule(ils, c2, opts, false, false, nullptr);
    EXPECT_EQ(hot.dead_removed, 1u);
    EXPECT_EQ(cold.dead_removed, 0u);
}

TEST(Btlib, HandshakeAcceptsMatchingVersions)
{
    mem::Memory m;
    btlib::SimLinux os(m);
    btlib::BtOsClient client(os.vtable());
    EXPECT_TRUE(client.ok());
    EXPECT_STREQ(client.osName(), "sim-linux");
}

TEST(Btlib, HandshakeRejectsMismatch)
{
    mem::Memory m;
    btlib::SimLinux os(m);
    btlib::BtOsVtable vt = os.vtable();
    vt.major = btlib::btos_major + 1;
    btlib::BtOsClient newer(vt);
    EXPECT_FALSE(newer.ok());

    vt = os.vtable();
    vt.minor = btlib::btos_minor + 1;
    btlib::BtOsClient newer_minor(vt);
    EXPECT_FALSE(newer_minor.ok());

    vt = os.vtable();
    vt.system_service = nullptr;
    btlib::BtOsClient broken(vt);
    EXPECT_FALSE(broken.ok());
}

TEST(Btlib, AllocPagesMapsMemory)
{
    mem::Memory m;
    btlib::SimLinux os(m);
    btlib::BtOsClient client(os.vtable());
    uint64_t base = client.allocPages(12345);
    EXPECT_NE(base, 0u);
    EXPECT_TRUE(m.check(base, 12345, mem::PermRW));
}

TEST(Btlib, PersonalitiesDifferInAbi)
{
    mem::Memory m;
    btlib::SimLinux lin(m);
    btlib::SimWindows win(m);
    EXPECT_NE(lin.intVector(), win.intVector());
    EXPECT_EQ(lin.intVector(), btlib::linux_abi::int_vector);
    EXPECT_EQ(win.intVector(), btlib::windows_abi::int_vector);
}

TEST(GuestLoader, MapsSectionsWithPermissions)
{
    guest::Image img;
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, {0x90, 0xc3});
    img.addData(Layout::data_base, 0x2000);
    mem::Memory m;
    uint32_t esp = guest::load(img, m);
    EXPECT_TRUE(m.check(Layout::code_base, 2, mem::PermRX));
    EXPECT_FALSE(m.check(Layout::code_base, 2, mem::PermWrite));
    EXPECT_TRUE(m.check(Layout::data_base, 0x2000, mem::PermRW));
    EXPECT_TRUE(m.check(esp - 16, 16, mem::PermRW));
    EXPECT_TRUE(m.isCode(Layout::code_base, 2));
}

TEST(GuestLoader, WritableCodeStaysWritable)
{
    guest::Image img;
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, {0x90, 0xc3}, /*writable=*/true);
    mem::Memory m;
    guest::load(img, m);
    EXPECT_TRUE(m.check(Layout::code_base, 2, mem::PermRWX));
}

} // namespace
} // namespace el
