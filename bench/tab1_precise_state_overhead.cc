/**
 * @file
 * Table 1 / section 4: the cold-code precise-state discipline ("state
 * update happens only after the last faulty instruction" + the IA-32
 * state register). The paper says the overhead is "negligible both in
 * terms of time and code size"; this bench measures it and also
 * demonstrates the correctness property it buys: a fault under a
 * push-heavy kernel leaves ESP exactly as the interpreter does.
 */

#include "bench/bench_common.hh"

#include "ia32/assembler.hh"

using namespace el;
using namespace el::ia32;
using guest::Layout;

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Cold-code precise state (ordering + state register)",
                  "Table 1 / section 4");

    // Push/pop/call-heavy kernel (many faultable stack operations).
    Assembler as(Layout::code_base);
    as.movRI(RegEcx, 200000);
    Label top = as.label();
    as.bind(top);
    as.pushR(RegEcx);
    as.pushR(RegEax);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.popR(RegEbx);
    as.popR(RegEdx);
    as.aluRR(Op::Xor, RegEax, RegEbx);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.movRR(RegEbx, RegEax);
    as.movRI(RegEax, 1);
    as.intN(0x80);
    guest::Image img;
    img.entry = as.base();
    img.addCode(as.base(), as.finish());
    img.addData(Layout::data_base, 0x1000);

    // Cold-only so the cold discipline is what gets measured.
    core::Options cold_only;
    cold_only.enable_hot_phase = false;
    harness::TranslatedRun run =
        harness::runTranslated(img, btlib::OsAbi::Linux, cold_only);

    uint64_t cold_ipf =
        run.runtime->translator().stats.get("xlate.cold_ipf_insns");
    uint64_t cold_ia32 =
        run.runtime->translator().stats.get("xlate.cold_insns");

    // Count the state-register maintenance instructions in the cache.
    uint64_t state_reg_insns = 0;
    ipf::CodeCache &cc = run.runtime->codeCache();
    for (int64_t i = 0; i < cc.nextIndex(); ++i) {
        const ipf::Instr &in = cc.at(i);
        if ((in.op == ipf::IpfOp::Movl || in.op == ipf::IpfOp::AddImm) &&
            in.dst == ipf::gr_state) {
            ++state_reg_insns;
        }
    }

    Table table({"metric", "value"});
    table.addRow({"IA-32 insns translated (cold)",
                  strfmt("%llu", (unsigned long long)cold_ia32)});
    table.addRow({"IPF insns emitted (cold)",
                  strfmt("%llu", (unsigned long long)cold_ipf)});
    table.addRow({"state-register updates emitted",
                  strfmt("%llu", (unsigned long long)state_reg_insns)});
    table.addRow({"code-size overhead of state register",
                  strfmt("%.2f%%",
                         100.0 * state_reg_insns / (double)cold_ipf)});
    table.addRow({"paper's claim", "\"negligible\""});
    std::printf("%s\n", table.render().c_str());

    bench::Report rep("tab1_precise_state_overhead");
    rep.row("push-heavy-kernel")
        .metric("cold_ia32_insns", static_cast<double>(cold_ia32))
        .metric("cold_ipf_insns", static_cast<double>(cold_ipf))
        .metric("state_reg_insns", static_cast<double>(state_reg_insns))
        .metric("code_size_overhead_pct",
                100.0 * state_reg_insns / static_cast<double>(cold_ipf))
        .attribution(*run.runtime);

    // Correctness side: fault precision (Table 1's correct ordering).
    Assembler f(Layout::code_base);
    f.movRI(RegEsp, 0x40); // unmapped page 0
    f.pushR(RegEax);       // store faults; ESP must NOT move
    f.movRI(RegEax, 1);
    f.movRI(RegEbx, 0);
    f.intN(0x80);
    guest::Image fimg;
    fimg.entry = f.base();
    fimg.addCode(f.base(), f.finish());
    harness::Outcome ref = harness::runInterpreter(fimg, btlib::OsAbi::Linux);
    harness::TranslatedRun tr =
        harness::runTranslated(fimg, btlib::OsAbi::Linux, cold_only);
    bool precise = ref.final_state.gpr[RegEsp] ==
                   tr.outcome.final_state.gpr[RegEsp];
    std::printf("fault-ordering check: interpreter esp=%08x, "
                "translated esp=%08x -> %s\n",
                ref.final_state.gpr[RegEsp],
                tr.outcome.final_state.gpr[RegEsp],
                precise ? "PRECISE (Table 1 'correct' ordering)"
                        : "IMPRECISE");
    rep.scalar("fault_ordering_precise", precise ? 1.0 : 0.0);
    rep.write();
    return 0;
}
