/**
 * @file
 * Translator configuration.
 *
 * Every design choice the paper calls out is a switch here so the
 * ablation benchmarks (bench/ablation_design_choices) can turn each one
 * off independently: two-phase translation, predication, unrolling,
 * EFlags elimination, FXCH elimination, the three FP/MMX/SSE speculation
 * schemes (with the FX!32-style FP-stack-in-memory fallback), load
 * speculation, block chaining, and misalignment avoidance.
 */

#ifndef EL_CORE_OPTIONS_HH
#define EL_CORE_OPTIONS_HH

#include <cstdint>

#include "support/faultinject.hh"

namespace el::trace
{
class Tracer;
} // namespace el::trace

namespace el::prof
{
class Profiler;
} // namespace el::prof

namespace el::sentinel
{
class Sentinel;
} // namespace el::sentinel

namespace el::persist
{
class ArtifactStore;
} // namespace el::persist

namespace el::metrics
{
class Registry;
} // namespace el::metrics

namespace el::core
{

class Checkpointer;

/** Tunables and feature toggles of the translator. */
struct Options
{
    // ----- two-phase thresholds ------------------------------------
    uint32_t heat_threshold = 64;    //!< Block-use count that registers
                                     //!< the block as hot candidate.
    uint32_t hot_batch = 4;          //!< Candidates buffered before an
                                     //!< optimization session starts.
    uint32_t second_registration = 2;//!< A block registering this many
                                     //!< times forces a session (tight
                                     //!< loops don't wait).
    unsigned analysis_window = 8;    //!< Neighbouring blocks analysed
                                     //!< during cold translation (1-20).
    unsigned max_trace_blocks = 8;   //!< Hyper-block size limit.
    unsigned max_trace_insns = 48;
    unsigned unroll_factor = 2;      //!< Loop unrolling multiplier.
    unsigned predication_max_side = 4; //!< Max insns on an if-converted
                                       //!< side.

    // ----- feature toggles (ablations) ------------------------------
    bool enable_hot_phase = true;
    bool enable_predication = true;
    bool enable_unroll = true;
    bool enable_eflags_elim = true;
    bool enable_fxch_elim = true;
    bool enable_fp_stack_spec = true; //!< false => FP stack in memory
                                      //!< (the FX!32 alternative).
    bool enable_mmx_alias_spec = true;
    bool enable_sse_format_spec = true;
    bool enable_misalign_avoidance = true;
    bool enable_load_speculation = true;
    bool enable_chaining = true;
    bool enable_addr_cse = true;

    // ----- simulated translator costs (charged to Overhead) --------
    double cold_xlate_cost_per_insn = 60.0;
    double hot_xlate_cost_per_insn = 1200.0; //!< ~20x cold (section 2).
    double runtime_entry_cost = 60.0;        //!< Per exit into BTGeneric.
    double guard_recovery_cost = 300.0;      //!< FP/SSE guard repair.

    // ----- asynchronous hot-translation pipeline --------------------
    uint32_t translation_threads = 0; //!< Hot-session worker threads;
                                      //!< 0 = synchronous (inline
                                      //!< sessions, today's behavior).
    bool deterministic_adoption = false; //!< Adopt hot results only at
                                      //!< block re-entry boundaries, in
                                      //!< enqueue order, on a simulated
                                      //!< worker timeline (replayable).
    double hot_enqueue_cost = 200.0;  //!< Guest stall per candidate
                                      //!< snapshot + enqueue.
    double hot_publish_cost_per_insn = 10.0; //!< Guest stall per IA-32
                                      //!< insn when adopting a finished
                                      //!< hot translation.

    // ----- limits ---------------------------------------------------
    uint64_t max_run_cycles = 400ULL * 1000 * 1000;
    uint32_t lookup_entries = 1024;  //!< Indirect-branch table entries.

    // ----- robustness / graceful degradation ------------------------
    uint64_t code_cache_capacity = 0; //!< Max cached IPF instructions;
                                      //!< 0 = unbounded (no GC).
    uint32_t cache_headroom = 512;    //!< Flush before translating when
                                      //!< fewer slots than this remain.
    uint32_t hot_retry_limit = 3;     //!< Failed hot sessions before a
                                      //!< block is pinned cold forever.
    uint32_t btos_alloc_retries = 8;  //!< Attempts for the runtime-area
                                      //!< allocation before InitError.
    uint32_t interp_fallback_insns = 32; //!< Instructions interpreted
                                         //!< when translation aborts.
    double cache_flush_cost = 20000.0;   //!< Overhead cycles per flush.

    // ----- fault injection (chaos testing; off by default) ----------
    FaultConfig fault;

    // ----- observability (off by default; zero-cost when off) -------
    trace::Tracer *trace = nullptr; //!< Lifecycle event sink (not owned).
                                    //!< Null = every trace site is one
                                    //!< predictable branch.
    bool collect_block_cycles = false; //!< Per-block cycle accounting in
                                       //!< the machine, for the run
                                       //!< report's per-block rows.
    prof::Profiler *profiler = nullptr; //!< Execution profiler (not
                                       //!< owned). Null = off; counters
                                       //!< live beside the timing model,
                                       //!< so cycles are identical
                                       //!< either way.
    sentinel::Sentinel *sentinel = nullptr; //!< Divergence sentinel +
                                       //!< quarantine ledger (not owned).
                                       //!< Null = off: no checkpoints,
                                       //!< no shadow replays, and every
                                       //!< hook is one predictable
                                       //!< branch costing zero simulated
                                       //!< cycles.
    persist::ArtifactStore *persist = nullptr; //!< Persistent hot-artifact
                                       //!< store (not owned). Null = off:
                                       //!< no recording, no dispatch-time
                                       //!< probes. Attached, published hot
                                       //!< artifacts are recorded into it
                                       //!< and dispatch adopts matching
                                       //!< records before translating.
    Checkpointer *checkpointer = nullptr; //!< In-run checkpoint driver
                                       //!< (not owned). Null = off;
                                       //!< attached, the runtime calls
                                       //!< maybeCheckpoint at adoption
                                       //!< boundaries (zero simulated
                                       //!< cycles, never with a sentinel
                                       //!< region open).

    // ----- flight recorder (ON by default; zero simulated cycles) ---
    bool flight_recorder = true;      //!< Always-on black box: the
                                      //!< runtime owns a FlightRecorder
                                      //!< + ProvenanceLedger fed by the
                                      //!< same hook sites as tracing.
                                      //!< false = the recorder is never
                                      //!< allocated and every hook is
                                      //!< one null-check branch (the
                                      //!< "compiled-out" comparison
                                      //!< point; results are bit-exact
                                      //!< either way).
    uint32_t flight_ring_capacity = 1024; //!< Last-N events kept per
                                      //!< host thread (drop-oldest).
    uint32_t provenance_events_per_eip = 32; //!< Lifecycle events kept
                                      //!< per guest entry point.
    metrics::Registry *metrics = nullptr; //!< Telemetry snapshotter (not
                                      //!< owned). Null = off; attached,
                                      //!< the runtime registers its
                                      //!< gauges/stat groups and drives
                                      //!< Registry::maybeEmit at
                                      //!< dispatch boundaries off the
                                      //!< simulated clock.

    // ----- accounting audit (off by default; zero simulated cycles) -
    bool audit = false;               //!< Run the machine-closure audit
                                      //!< (core/audit.hh) periodically
                                      //!< at adoption boundaries; the
                                      //!< embedder (el_run --audit)
                                      //!< additionally runs the full
                                      //!< audit after quiesce. Implies
                                      //!< collect_block_cycles — the
                                      //!< closure identity needs the
                                      //!< per-block books.
    uint64_t audit_period = 1000000;  //!< Simulated cycles between
                                      //!< in-run closure audits.
};

} // namespace el::core

#endif // EL_CORE_OPTIONS_HH
