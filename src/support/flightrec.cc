#include "support/flightrec.hh"

#include <algorithm>
#include <atomic>

namespace el::flight
{

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Dispatch:
        return "dispatch";
      case Kind::ColdXlate:
        return "cold_xlate";
      case Kind::HotEnqueue:
        return "hot_enqueue";
      case Kind::HotSession:
        return "hot_session";
      case Kind::HotCommit:
        return "hot_commit";
      case Kind::HotDiscard:
        return "hot_discard";
      case Kind::SmcInvalidate:
        return "smc_invalidate";
      case Kind::CacheFlush:
        return "cache_flush";
      case Kind::PersistAdopt:
        return "persist_adopt";
      case Kind::PersistReject:
        return "persist_reject";
      case Kind::SentinelShift:
        return "sentinel_shift";
      case Kind::Divergence:
        return "divergence";
      case Kind::FaultInject:
        return "fault_inject";
      case Kind::GuestFault:
        return "guest_fault";
    }
    return "?";
}

uint64_t
FlightRecorder::nextInstanceId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

FlightRecorder::Ring *
FlightRecorder::threadRing()
{
    // Same per-thread cache as the tracer's: one recorder per run is
    // the common case, so the hot path is two compares. The instance
    // id guards against address reuse across recorder lifetimes.
    struct Cache
    {
        const FlightRecorder *owner = nullptr;
        uint64_t owner_id = 0;
        Ring *ring = nullptr;
    };
    thread_local Cache cache;
    if (cache.owner == this && cache.owner_id == instance_id_)
        return cache.ring;

    std::lock_guard<std::mutex> lk(rings_mu_);
    rings_.push_back(std::make_unique<Ring>(ring_capacity_));
    cache.owner = this;
    cache.owner_id = instance_id_;
    cache.ring = rings_.back().get();
    return cache.ring;
}

std::vector<Event>
FlightRecorder::snapshot() const
{
    std::vector<Event> out;
    {
        std::lock_guard<std::mutex> lk(rings_mu_);
        for (const auto &ring : rings_) {
            std::lock_guard<std::mutex> rlk(ring->mu);
            out.insert(out.end(), ring->events.begin(),
                       ring->events.end());
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Event &x, const Event &y) {
                         if (x.ts != y.ts)
                             return x.ts < y.ts;
                         if (x.lane != y.lane)
                             return x.lane < y.lane;
                         if (x.kind != y.kind)
                             return x.kind < y.kind;
                         return x.a < y.a;
                     });
    return out;
}

uint64_t
FlightRecorder::dropped() const
{
    uint64_t n = 0;
    std::lock_guard<std::mutex> lk(rings_mu_);
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> rlk(ring->mu);
        n += ring->events.dropped();
    }
    return n;
}

} // namespace el::flight
