/**
 * @file
 * Shared helpers for the benchmark binaries: each bench regenerates one
 * table/figure of the paper's evaluation section and prints the paper's
 * reported numbers next to the measured ones. Absolute values are not
 * expected to match (the substrate is a simulator); the shape is what
 * is being reproduced.
 */

#ifndef EL_BENCH_COMMON_HH
#define EL_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <string>

#include "guest/workloads.hh"
#include "harness/exec.hh"
#include "harness/native.hh"
#include "support/stats.hh"
#include "support/strfmt.hh"

namespace el::bench
{

/** Per-bucket cycle fractions of a translated run. */
struct Distribution
{
    double hot = 0, cold = 0, overhead = 0, native = 0, idle = 0;
};

inline Distribution
distributionOf(const core::Runtime &rt)
{
    const auto &st = const_cast<core::Runtime &>(rt).machine().stats();
    double tot = st.totalCycles();
    Distribution d;
    if (tot <= 0)
        return d;
    d.hot = st.cycles[0] / tot;
    d.cold = st.cycles[1] / tot;
    d.overhead = st.cycles[2] / tot;
    d.native = st.cycles[3] / tot;
    d.idle = st.cycles[4] / tot;
    return d;
}

inline std::string
pct(double v)
{
    return strfmt("%5.1f%%", v * 100.0);
}

inline void
banner(const char *title, const char *paper_ref)
{
    std::printf("==================================================="
                "===========================\n");
    std::printf("%s\n(reproduces %s of \"IA-32 Execution Layer\", "
                "MICRO 2003)\n", title, paper_ref);
    std::printf("==================================================="
                "===========================\n");
}

} // namespace el::bench

#endif // EL_BENCH_COMMON_HH
